type measurement = {
  label : string;
  cycles : int;
  energy_nj : float;
  checked : (unit, string) result;
  stats : Stats.snapshot;
}

let summary_snapshot s =
  let reg = Stats.registry () in
  Ooo_model.register_summary_stats s (Stats.group reg "cpu");
  Stats.snapshot reg

let speedup ~baseline m =
  if m.cycles = 0 then 0.0 else float_of_int baseline.cycles /. float_of_int m.cycles

let efficiency ~baseline m = Energy_model.efficiency_gain ~baseline_nj:baseline.energy_nj m.energy_nj

let single_core (k : Kernel.t) =
  let mem = Main_memory.create () in
  k.Kernel.setup mem;
  let machine = Kernel.prepare_slice k mem ~lo:0 ~hi:k.Kernel.n in
  let r = Cpu_run.run k.Kernel.program machine in
  let m =
    {
      label = "1-core OoO";
      cycles = r.Cpu_run.summary.Ooo_model.cycles;
      energy_nj = Energy_model.cpu_energy_nj r.Cpu_run.summary;
      checked = k.Kernel.check mem;
      stats = summary_snapshot r.Cpu_run.summary;
    }
  in
  Main_memory.release mem;
  m

let multicore ?(cores = 16) (k : Kernel.t) =
  let mem = Main_memory.create () in
  k.Kernel.setup mem;
  let r = Multicore.run ~cores k mem in
  let stats =
    let reg = Stats.registry () in
    let grp = Stats.group reg "cpu" in
    List.iteri
      (fun i s ->
        Ooo_model.register_summary_stats s
          (Stats.subgroup grp (Printf.sprintf "core%d" i)))
      r.Multicore.summaries;
    Stats.snapshot reg
  in
  let m =
    {
      label = Printf.sprintf "%d-core OoO" cores;
      cycles = r.Multicore.cycles;
      energy_nj = Energy_model.multicore_energy_nj r.Multicore.summaries;
      checked = k.Kernel.check mem;
      stats;
    }
  in
  Main_memory.release mem;
  m

let mesa ?(grid = Grid.m128) ?(optimize = true) ?(iterative = true) ?mem_ports
    ?inject ?profile (k : Kernel.t) =
  let grid =
    match mem_ports with None -> grid | Some p -> { grid with Grid.mem_ports = p }
  in
  let options =
    Controller.default_options ~grid ~optimize ~iterative ?inject ?profile ()
  in
  let mem = Main_memory.create () in
  let machine = Kernel.prepare k mem in
  let report = Controller.run ~options k.Kernel.program machine in
  let accel = Energy_model.accel_energy ~grid report.Controller.activity in
  let energy_nj =
    Energy_model.cpu_energy_nj report.Controller.cpu_summary
    +. accel.Energy_model.total_nj
    +. Energy_model.mesa_energy_nj ~busy_cycles:report.Controller.mesa_busy_cycles
  in
  let m =
    {
      label = grid.Grid.name;
      cycles = report.Controller.total_cycles;
      energy_nj;
      checked = k.Kernel.check mem;
      stats = report.Controller.stats;
    }
  in
  Main_memory.release mem;
  (m, report)

(* [mesa] for callers that drop the report: the report's hierarchy is
   recycled before returning, which keeps sweep loops off the allocator. *)
let mesa_measure ?grid ?optimize ?iterative ?mem_ports ?inject ?profile k =
  let m, report = mesa ?grid ?optimize ?iterative ?mem_ports ?inject ?profile k in
  Hierarchy.release report.Controller.hier;
  m

(* ------------------------------------------------------------------ *)
(* Translation memo. Building a kernel's hot-loop LDFG and running
   Algorithm 1 over it are pure functions of (kernel, grid, interconnect),
   yet every figure re-derives them — fig12 and table2 each re-translate
   the whole suite, fig15 re-maps nn at every PE count. The results
   (Dfg.t, Placement.t) are immutable, so one copy can be shared across
   figures and across pool workers; the mutex makes concurrent misses
   safe (and deduplicates the work: a miss computes inside the lock). *)

let memo_lock = Mutex.create ()

let dfg_memo : (string * int, Dfg.t) Hashtbl.t = Hashtbl.create 32

(* Grid.t and Interconnect.kind are immutable scalar records, so structural
   hashing of the whole key is sound. *)
type placement_key = {
  pk_kernel : string;
  pk_n : int;
  pk_grid : Grid.t;
  pk_kind : Interconnect.kind;
}

let placement_memo : (placement_key, (Placement.t, string) result) Hashtbl.t =
  Hashtbl.create 32

let memo_hits = Atomic.make 0
let memo_misses = Atomic.make 0
let memo_evictions = Atomic.make 0

(* Both tables share one capacity: a multi-hundred-point DSE sweep inserts a
   placement per (kernel, grid, interconnect) and would otherwise grow
   placement_memo without bound. Entries are cheap to recompute, so overflow
   resets both tables wholesale rather than tracking recency. *)
let memo_capacity = ref 512

let translation_cache_capacity () = !memo_capacity

let set_translation_cache_capacity n =
  if n < 1 then
    invalid_arg "Runner.set_translation_cache_capacity: capacity must be >= 1";
  Mutex.lock memo_lock;
  memo_capacity := n;
  Mutex.unlock memo_lock

let translation_cache_stats () =
  (Atomic.get memo_hits, Atomic.get memo_misses, Atomic.get memo_evictions)

let clear_translation_cache () =
  Mutex.lock memo_lock;
  Hashtbl.reset dfg_memo;
  Hashtbl.reset placement_memo;
  Atomic.set memo_hits 0;
  Atomic.set memo_misses 0;
  Atomic.set memo_evictions 0;
  Mutex.unlock memo_lock

let memoized table key compute =
  Mutex.lock memo_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock memo_lock)
    (fun () ->
      match Hashtbl.find_opt table key with
      | Some v ->
        Atomic.incr memo_hits;
        v
      | None ->
        Atomic.incr memo_misses;
        let v = compute () in
        if Hashtbl.length dfg_memo + Hashtbl.length placement_memo >= !memo_capacity
        then begin
          Hashtbl.reset dfg_memo;
          Hashtbl.reset placement_memo;
          Atomic.incr memo_evictions
        end;
        Hashtbl.add table key v;
        v)

let dfg_of_kernel_uncached (k : Kernel.t) =
  let prog = k.Kernel.program in
  let code = Program.code prog in
  let backward =
    let rec find i =
      if i = Array.length code then failwith (k.Kernel.name ^ ": no backward branch")
      else
        match code.(i) with
        | Isa.Branch (_, _, _, off) when off < 0 -> i
        | _ -> find (i + 1)
    in
    find 0
  in
  let last_addr = Program.addr_of_index prog backward in
  let off = Option.get (Isa.branch_offset code.(backward)) in
  let entry = last_addr + off in
  let first = Program.index_of_addr prog entry in
  let region =
    {
      Region.entry;
      back_branch_addr = last_addr;
      instrs = Array.sub code first (backward - first + 1);
      pragma = Program.pragma_at prog entry;
      observed_iterations = 0;
    }
  in
  Ldfg.build_exn region

let dfg_of_kernel (k : Kernel.t) =
  memoized dfg_memo (k.Kernel.name, k.Kernel.n) (fun () -> dfg_of_kernel_uncached k)

let placement_of ?(kind = Interconnect.Mesh_noc) ~grid (k : Kernel.t) =
  let dfg = dfg_of_kernel k in
  let key = { pk_kernel = k.Kernel.name; pk_n = k.Kernel.n; pk_grid = grid; pk_kind = kind } in
  memoized placement_memo key (fun () ->
      Mapper.map ~grid ~kind (Perf_model.create dfg))

(* Atomic replacement of a memoized placement — the hand-off point for a
   background refinement pass: once swapped, every subsequent
   [placement_of] hit (warm service requests included) sees the refined
   placement. The swap happens under the memo lock, so readers observe
   either the old or the new placement, never a torn state. *)
let swap_placement ?(kind = Interconnect.Mesh_noc) ~grid (k : Kernel.t)
    placement =
  let key =
    { pk_kernel = k.Kernel.name; pk_n = k.Kernel.n; pk_grid = grid; pk_kind = kind }
  in
  Mutex.lock memo_lock;
  Hashtbl.replace placement_memo key (Ok placement);
  Mutex.unlock memo_lock

let dynaspam ?(config = Dynaspam.default_config) (k : Kernel.t) =
  let base = single_core k in
  let dfg = dfg_of_kernel k in
  if Dfg.node_count dfg > config.Dynaspam.window then
    { base with label = "DynaSpAM (not qualified)" }
  else begin
    (* Empirical model: the trace executes on the in-core fabric with the
       frontend out of the way — wide issue, predication instead of branch
       recovery — but the core's own functional units, memory ports, cache
       behaviour and a window bounded by the fabric size. We reuse the OoO
       dataflow scheduler with that configuration over the real dynamic
       stream. *)
    let fabric_cpu =
      {
        Ooo_model.default_config with
        Ooo_model.width = 8;
        rob_size = Ooo_model.default_config.Ooo_model.rob_size;
        mispredict_penalty = 0;
        alu_units = config.Dynaspam.alu_throughput;
        fp_units = config.Dynaspam.fp_throughput;
        mem_ports = config.Dynaspam.mem_ports;
      }
    in
    let mem = Main_memory.create () in
    k.Kernel.setup mem;
    let machine = Kernel.prepare_slice k mem ~lo:0 ~hi:k.Kernel.n in
    let hier = Hierarchy.create Hierarchy.default_config in
    let r = Cpu_run.run ~config:fabric_cpu ~hierarchy:hier k.Kernel.program machine in
    Hierarchy.release hier;
    let cycles = r.Cpu_run.summary.Ooo_model.cycles + 300 in
    let energy_nj =
      (* Same dynamic work minus the frontend/rename share, plus static
         power over the (shorter) runtime. *)
      (float_of_int cycles *. 0.175)
      +. ((base.energy_nj -. (float_of_int base.cycles *. 0.175)) *. 0.6)
    in
    let m =
      {
        label = "DynaSpAM";
        cycles;
        energy_nj;
        checked = k.Kernel.check mem;
        stats = summary_snapshot r.Cpu_run.summary;
      }
    in
    Main_memory.release mem;
    m
  end
