(* See fuzz.mli. Everything here is deterministic from the master seed:
   per-case seeds are drawn sequentially before any work is distributed, so
   the worker count never changes what each case computes. *)

type fabric = {
  rows : int;
  cols : int;
  ports : int;
  kind : Interconnect.kind;
  l1_kb : int;
  l2_kb : int;
  profile : bool;
}

(* The same axes the PR 4 differential qcheck draws from, plus the DSE's
   cache-size axes. *)
let rows_choices = [| 4; 6; 8; 16 |]
let cols_choices = [| 4; 8 |]
let ports_choices = [| 1; 2; 4; 8; 16 |]

let kind_choices =
  [| Interconnect.Mesh_noc; Interconnect.Hierarchical_rows; Interconnect.Pure_mesh |]

let l1_choices = [| 16; 32; 64 |]
let l2_choices = [| 1024; 4096; 8192 |]
let pick rng a = a.(Prng.int rng (Array.length a))

let draw_fabric rng =
  {
    rows = pick rng rows_choices;
    cols = pick rng cols_choices;
    ports = pick rng ports_choices;
    kind = pick rng kind_choices;
    l1_kb = pick rng l1_choices;
    l2_kb = pick rng l2_choices;
    profile = Prng.int rng 8 = 0;
  }

let fabric_to_string f =
  Printf.sprintf "%dx%d ports=%d %s L1:%dK L2:%dK%s" f.rows f.cols f.ports
    (Dse.kind_to_string f.kind) f.l1_kb f.l2_kb
    (if f.profile then " +profile" else "")

let fabric_to_json f =
  Json.Assoc
    [
      ("rows", Json.Int f.rows);
      ("cols", Json.Int f.cols);
      ("ports", Json.Int f.ports);
      ("kind", Json.String (Dse.kind_to_string f.kind));
      ("l1_kb", Json.Int f.l1_kb);
      ("l2_kb", Json.Int f.l2_kb);
      ("profile", Json.Bool f.profile);
    ]

let fabric_of_json j =
  let ( let* ) = Result.bind in
  let int k =
    match Option.bind (Json.member k j) Json.to_int with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "fabric: missing %s" k)
  in
  let* rows = int "rows" in
  let* cols = int "cols" in
  let* ports = int "ports" in
  let* l1_kb = int "l1_kb" in
  let* l2_kb = int "l2_kb" in
  let* kind =
    match Json.member "kind" j with
    | Some (Json.String s) -> Dse.kind_of_string s
    | _ -> Error "fabric: missing kind"
  in
  let profile =
    match Json.member "profile" j with Some (Json.Bool b) -> b | _ -> false
  in
  Ok { rows; cols; ports; kind; l1_kb; l2_kb; profile }

(* ------------------------------------------------------------------ *)
(* One differential case.                                              *)

type observation = { cycles : int; offloads : int; mem_checksum : int }

let hier_config (f : fabric) =
  let dc = Hierarchy.default_config in
  {
    dc with
    Hierarchy.l1 =
      Cache.config ~size_bytes:(f.l1_kb * 1024) ~ways:dc.Hierarchy.l1.Cache.ways
        ~line_bytes:dc.Hierarchy.l1.Cache.line_bytes
        ~hit_latency:dc.Hierarchy.l1.Cache.hit_latency;
    l2 =
      Cache.config ~size_bytes:(f.l2_kb * 1024) ~ways:dc.Hierarchy.l2.Cache.ways
        ~line_bytes:dc.Hierarchy.l2.Cache.line_bytes
        ~hit_latency:dc.Hierarchy.l2.Cache.hit_latency;
  }

let run_case ?defect spec (f : fabric) =
  let ( let* ) = Result.bind in
  let* b = Tile_lower.lower ?defect spec in
  let mem = Main_memory.create () in
  b.Tile_lower.setup mem;
  let machine = Machine.create ~pc:(Program.entry b.Tile_lower.program) mem in
  Machine.set_args machine (b.Tile_lower.args ~lo:0 ~hi:b.Tile_lower.n);
  let expected = Machine.copy machine ~mem:(Main_memory.copy mem) () in
  let i_halt, _ = Interp.run b.Tile_lower.program expected in
  let* () =
    if i_halt = Interp.Ecall_halt then Ok ()
    else Error "interpreter did not reach ecall"
  in
  let grid = Grid.make ~rows:f.rows ~cols:f.cols ~mem_ports:f.ports () in
  let options =
    { (Controller.default_options ~grid ~profile:f.profile ()) with
      Controller.kind = f.kind }
  in
  let hier = Hierarchy.create (hier_config f) in
  let report = Controller.run ~options ~hier b.Tile_lower.program machine in
  let* () =
    if report.Controller.halt = Interp.Ecall_halt then Ok ()
    else Error "controller did not reach ecall"
  in
  let* () =
    if Main_memory.equal expected.Machine.mem mem then Ok ()
    else Error "memory differs from the interpreter"
  in
  let* () =
    if Machine.arch_equal expected machine then Ok ()
    else Error "architectural registers differ from the interpreter"
  in
  let* () =
    match b.Tile_lower.check mem with
    | Ok () -> Ok ()
    | Error e -> Error ("DSL reference mismatch: " ^ e)
  in
  let* () =
    if
      report.Controller.total_cycles
      = report.Controller.cpu_cycles + report.Controller.accel_cycles
        + report.Controller.overhead_cycles
    then Ok ()
    else Error "cycle accounting does not close"
  in
  let* () =
    if not f.profile then Ok ()
    else
      match Profile.of_report ~kernel:spec.Tile_dsl.sname report with
      | Error e -> Error ("profile: " ^ e)
      | Ok p ->
        if
          Profile.closes p
          && p.Profile.attributed_cycles
             = report.Controller.accel_cycles + report.Controller.overhead_cycles
        then Ok ()
        else Error "stall attribution does not close"
  in
  let out =
    {
      cycles = report.Controller.total_cycles;
      offloads = report.Controller.offloads;
      mem_checksum = Main_memory.checksum mem;
    }
  in
  (* Passing cases dominate a fuzz run; recycle their buffers. Failing
     cases bail out through [let*] above and leak, which is fine — they
     end the run. *)
  Hierarchy.release hier;
  Main_memory.release mem;
  Main_memory.release expected.Machine.mem;
  Ok out

(* ------------------------------------------------------------------ *)
(* Shrinking.                                                          *)

type failure = {
  index : int;
  kernel_seed : int;
  fabric : fabric;
  detail : string;
  spec : Tile_dsl.spec;
  shrunk : Tile_dsl.spec;
  shrunk_detail : string;
  shrink_steps : int;
}

let shrink ?defect ?(max_attempts = 300) spec fabric =
  let attempts = ref 0 in
  let fails s =
    if !attempts >= max_attempts then None
    else begin
      incr attempts;
      match run_case ?defect s fabric with Ok _ -> None | Error d -> Some d
    end
  in
  match fails spec with
  | None -> (spec, "not reproducible", 0)
  | Some detail0 ->
    let rec go current detail steps =
      let rec first = function
        | [] -> None
        | c :: rest -> (
          match fails c with Some d -> Some (c, d) | None -> first rest)
      in
      match first (Tile_gen.shrink_candidates current) with
      | Some (c, d) when !attempts < max_attempts -> go c d (steps + 1)
      | Some (c, d) -> (c, d, steps + 1)
      | None -> (current, detail, steps)
    in
    go spec detail0 0

(* ------------------------------------------------------------------ *)
(* The campaign.                                                       *)

type summary = {
  cases : int;
  offloaded_cases : int;
  total_offloads : int;
  failures : failure list;
  digest : int;
}

let fnv_prime = 0x100000001b3

let fnv acc x =
  let acc = (acc lxor (x land 0xFFFFFFFF)) * fnv_prime in
  ((acc lxor (x lsr 32)) * fnv_prime) land max_int

let run ?jobs ?defect ?(max_shrink = 300) ~seed ~count () =
  let master = Prng.create seed in
  let cases =
    List.init count (fun i ->
        let kernel_seed = Int64.to_int (Prng.bits64 master) land max_int in
        let fabric_seed = Int64.to_int (Prng.bits64 master) land max_int in
        (i, kernel_seed, fabric_seed))
  in
  let results =
    Pool.run ?jobs
      (fun (i, kernel_seed, fabric_seed) ->
        let spec = Tile_gen.generate ~seed:kernel_seed in
        let fabric = draw_fabric (Prng.create fabric_seed) in
        match run_case ?defect spec fabric with
        | Ok obs -> Ok (i, obs)
        | Error detail ->
          let shrunk, shrunk_detail, shrink_steps =
            shrink ?defect ~max_attempts:max_shrink spec fabric
          in
          Error
            {
              index = i;
              kernel_seed;
              fabric;
              detail;
              spec;
              shrunk;
              shrunk_detail;
              shrink_steps;
            })
      cases
  in
  let summary =
    List.fold_left
      (fun acc r ->
        match r with
        | Ok (_, obs) ->
          {
            acc with
            offloaded_cases = acc.offloaded_cases + (if obs.offloads > 0 then 1 else 0);
            total_offloads = acc.total_offloads + obs.offloads;
            digest =
              fnv (fnv (fnv acc.digest obs.cycles) obs.offloads) obs.mem_checksum;
          }
        | Error f ->
          { acc with failures = f :: acc.failures; digest = fnv acc.digest (-1) })
      { cases = count; offloaded_cases = 0; total_offloads = 0; failures = [];
        digest = Int64.to_int 0xcbf29ce484222325L land max_int }
      results
  in
  { summary with failures = List.rev summary.failures }

(* ------------------------------------------------------------------ *)
(* Corpus.                                                             *)

let failure_to_json ~master_seed f =
  let listing spec =
    match Tile_lower.lower spec with
    | Ok b ->
      Json.List
        (String.split_on_char '\n' (Disasm.listing b.Tile_lower.program)
        |> List.filter (fun l -> l <> "")
        |> List.map (fun l -> Json.String l))
    | Error e -> Json.String ("unloaderable: " ^ e)
  in
  Json.Assoc
    [
      ("master_seed", Json.Int master_seed);
      ("index", Json.Int f.index);
      ("kernel_seed", Json.Int f.kernel_seed);
      ("fabric", fabric_to_json f.fabric);
      ("detail", Json.String f.detail);
      ("shrunk_detail", Json.String f.shrunk_detail);
      ("shrink_steps", Json.Int f.shrink_steps);
      ("shrunk_statements", Json.Int (Tile_dsl.stmt_count f.shrunk));
      ("spec", Tile_dsl.to_json f.spec);
      ("shrunk", Tile_dsl.to_json f.shrunk);
      ("shrunk_pretty", Json.String (Tile_dsl.to_string f.shrunk));
      ("disasm", listing f.shrunk);
    ]

let write_corpus ~dir ~master_seed f =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (Printf.sprintf "fail-%04d.json" f.index) in
  let oc = open_out path in
  output_string oc (Json.to_string ~indent:2 (failure_to_json ~master_seed f));
  output_string oc "\n";
  close_out oc;
  path

let replay ?defect j =
  let ( let* ) = Result.bind in
  let* spec =
    match Json.member "shrunk" j with
    | Some s -> Tile_dsl.of_json s
    | None -> (
      match Json.member "spec" j with
      | Some s -> Tile_dsl.of_json s
      | None -> Error "corpus entry has no spec")
  in
  let* fabric =
    match Json.member "fabric" j with
    | Some f -> fabric_of_json f
    | None -> Error "corpus entry has no fabric"
  in
  run_case ?defect spec fabric
