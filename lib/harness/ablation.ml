type variant = Full | No_tiling | No_pipelining | No_mem_opts | No_iterative | Nothing

let variant_name = function
  | Full -> "full"
  | No_tiling -> "no tiling"
  | No_pipelining -> "no pipelining"
  | No_mem_opts -> "no mem opts"
  | No_iterative -> "no iterative"
  | Nothing -> "bare mapping"

let all_variants = [ Full; No_tiling; No_pipelining; No_mem_opts; No_iterative; Nothing ]

let tune_of = function
  | Full | No_iterative -> Fun.id
  | No_tiling -> fun (c : Accel_config.t) -> { c with Accel_config.tiling = 1 }
  | No_pipelining -> fun c -> { c with Accel_config.pipelined = false }
  | No_mem_opts ->
    fun c ->
      { c with Accel_config.forwarding = []; vector_groups = []; prefetched = [] }
  | Nothing ->
    fun c ->
      {
        c with
        Accel_config.tiling = 1;
        pipelined = false;
        forwarding = [];
        vector_groups = [];
        prefetched = [];
      }

let iterative_of = function
  | No_iterative | Nothing -> false
  | Full | No_tiling | No_pipelining | No_mem_opts -> true

let run_variant ?(grid = Grid.m128) variant (k : Kernel.t) =
  let options =
    {
      (Controller.default_options ~grid ~optimize:true ~iterative:(iterative_of variant) ())
      with
      Controller.tune = tune_of variant;
    }
  in
  let mem = Main_memory.create () in
  let machine = Kernel.prepare k mem in
  let report = Controller.run ~options k.Kernel.program machine in
  let accel = Energy_model.accel_energy ~grid report.Controller.activity in
  let m =
    {
      Runner.label = variant_name variant;
      cycles = report.Controller.total_cycles;
      energy_nj =
        Energy_model.cpu_energy_nj report.Controller.cpu_summary
        +. accel.Energy_model.total_nj
        +. Energy_model.mesa_energy_nj ~busy_cycles:report.Controller.mesa_busy_cycles;
      checked = k.Kernel.check mem;
      stats = report.Controller.stats;
    }
  in
  Hierarchy.release report.Controller.hier;
  Main_memory.release mem;
  m

let default_kernels () =
  List.map Workloads.find [ "gaussian"; "kmeans"; "btree"; "bfs" ]

let experiment ?jobs ?(grid = Grid.m128) ?kernels () =
  let kernels = match kernels with Some ks -> ks | None -> default_kernels () in
  let t =
    Tables.create
      ~title:
        (Printf.sprintf "Ablation: speedup vs 16-core CPU when removing one mechanism (%s)"
           grid.Grid.name)
      (("benchmark", Tables.Left)
      :: List.map (fun v -> (variant_name v, Tables.Right)) all_variants)
  in
  let per_variant = Hashtbl.create 8 in
  let measured =
    Pool.with_pool ?jobs (fun pool ->
        kernels
        |> List.map (fun (k : Kernel.t) ->
               ( k,
                 Pool.submit pool (fun () -> Runner.multicore k),
                 List.map
                   (fun v -> (v, Pool.submit pool (fun () -> run_variant ~grid v k)))
                   all_variants ))
        |> List.map (fun (k, b, vs) ->
               (k, Pool.await b, List.map (fun (v, f) -> (v, Pool.await f)) vs)))
  in
  List.iter
    (fun ((k : Kernel.t), base, variants) ->
      let cells =
        List.map
          (fun (v, m) ->
            let ok = m.Runner.checked = Ok () && base.Runner.checked = Ok () in
            let s = Runner.speedup ~baseline:base m in
            let prev = Option.value (Hashtbl.find_opt per_variant v) ~default:[] in
            Hashtbl.replace per_variant v (s :: prev);
            if ok then Tables.xcell s else "FAIL")
          variants
      in
      Tables.add_row t (k.Kernel.name :: cells))
    measured;
  Tables.add_rule t;
  let geomeans =
    List.map
      (fun v -> Stats.geomean (Option.value (Hashtbl.find_opt per_variant v) ~default:[]))
      all_variants
  in
  Tables.add_row t ("geomean" :: List.map Tables.xcell geomeans);
  let summary =
    List.map2 (fun v g -> ("ablation_" ^ variant_name v, g)) all_variants geomeans
  in
  { Experiments.table = t; summary }
