(** Model-guided placement refinement over real kernels: the harness wiring
    for {!Mapper.refine}.

    The cost model ({!Cost_model}) predicts, the event engine confirms —
    each candidate the model likes is re-executed end to end (fresh memory,
    machine and hierarchy, outputs validated against the kernel's OCaml
    reference), so an accepted refinement is a real, semantics-preserving
    cycle win and the pass can never regress a kernel. *)

type report = {
  kernel : string;
  baseline_cycles : int;     (** engine cycles of the Algorithm-1 placement *)
  refined_cycles : int;      (** engine cycles of the refined placement *)
  model_baseline : int;      (** cost-model estimate of the baseline *)
  model_refined : int;       (** cost-model estimate of the result *)
  rounds : int;
  proposed : int;            (** candidates scored by the model *)
  confirmed : int;           (** engine confirmations run *)
  accepted : int;            (** moves/swaps adopted *)
  iterations : int;          (** hot-loop trip count used throughout *)
  placement : Placement.t;   (** the refined placement *)
  baseline : Placement.t;    (** the Algorithm-1 placement it started from *)
  config : Accel_config.t;   (** refined placement with the kernel's
                                 optimization flags — ready to execute *)
  dfg : Dfg.t;
}

val run :
  ?seed:int ->
  ?max_rounds:int ->
  ?beam:int ->
  ?kind:Interconnect.kind ->
  ?grid:Grid.t ->
  Kernel.t ->
  (report, string) result
(** Refine [kernel]'s Algorithm-1 placement on [grid] (default
    {!Grid.m64}). Deterministic for fixed arguments: the model is pure, the
    engine is deterministic, and ranking ties break on [seed] (default 0).
    [Error] when the kernel cannot be mapped at all or its baseline
    execution fails. *)

val run_measured :
  ?seed:int ->
  ?max_rounds:int ->
  ?beam:int ->
  ?kind:Interconnect.kind ->
  ?grid:Grid.t ->
  ?baseline:Placement.t ->
  measured:Stats.snapshot ->
  Kernel.t ->
  (report, string) result
(** {!run} with the cost model's latency oracles fed from [measured] — a
    profiled engine window's per-node snapshot
    ({!Cost_model.op_oracle_of_measured} /
    {!Cost_model.mem_oracle_of_measured}) — and an optional starting
    [baseline] placement (default: the memoized Algorithm-1 placement).
    The backend of mesad's profiling-window feedback loop: the model ranks
    candidates with the latencies this kernel actually exhibited, and the
    engine still confirms every adoption, so never-regress holds
    unchanged. *)

val config_for : report -> Placement.t -> Accel_config.t
(** The kernel's optimization flags around an arbitrary placement — what
    [run] itself executes, exposed so differential tests can re-run the
    refined placement through both engines. *)

val profile : report -> Placement.t -> (Profile.t, string) result
(** Execute [placement] under the report's configuration with an
    attribution collector attached and summarize it — the
    `refine --profile-out` backend and the CI `profile-diff` gate's input.
    The profile's critical path is the cost model's chain for that
    placement. *)

val experiment : ?jobs:int -> unit -> Experiments.outcome
(** The bench-harness entry: refine five reference kernels on M-64 and
    tabulate baseline vs refined cycles with the search counters. [jobs] is
    accepted for registry uniformity; the pass itself is sequential. *)

val report_to_json : report -> Json.t
(** Stable summary (no placement dump): kernel, cycle counts, model
    estimates, and search counters. *)
