(** `mesa profile`: the user-facing readout of the cycle-attribution
    collector ({!Attribution}).

    A profile is a plain-data summary of one profiled MESA run — per-lane
    stall-taxonomy buckets (quantized so every lane sums to exactly
    [attributed_cycles]), II decomposition, measured critical path, NoC and
    cache-port occupancy. It serializes to a stable, diffable JSON schema
    ([mesa-profile-v1]) so profiles can be stored as goldens and gated in
    CI with {!diff} (`mesa_cli profile-diff`). *)

type t = {
  kernel : string;
  grid_name : string;
  rows : int;
  cols : int;
  ls_entries : int;
  mem_ports : int;
  total_cycles : int;        (** whole-program wall clock (CPU included) *)
  accel_cycles : int;        (** fabric engine cycles (clean windows) *)
  config_cycles : int;       (** controller Config charges: offload
                                 transfers, reconfiguration stalls,
                                 discarded fault windows *)
  attributed_cycles : int;   (** [accel_cycles + config_cycles] — what every
                                 lane's buckets sum to (the closure
                                 invariant) *)
  iterations : int;
  windows : int;
  lane_labels : string array;
  lane_buckets : int array array;
      (** per lane, {!Attribution.bucket_count} integers in canonical
          bucket order *)
  totals : int array;        (** bucket totals summed over lanes *)
  ii : Attribution.ii_summary;
  critical_path : int list;  (** measured-weight critical path of the
                                 dominant (most fabric cycles) region *)
  critical_path_latency : float;
  critical_path_pct : float;
      (** [100 * latency * iterations / accel_cycles] — how much of the
          fabric time one iteration's critical chain explains. Values above
          100 mean pipelining overlaps successive chains. *)
  noc_claims : int array;    (** per router slice *)
  noc_busy : int array;
  port_claims : int;
  port_busy : int;
  mem_levels : (string * int) list;
      (** cache-hierarchy access mix ({!Hierarchy.level_counts}) *)
  dominant : Attribution.bucket;
      (** the stall bucket (Busy/Drain/Idle/Masked excluded) with the most
          attributed cycles — the named bottleneck *)
}

val of_report : kernel:string -> Controller.report -> (t, string) result
(** Summarize a profiled run. [Error] when the report carries no collector
    (the run was made without [profile:true]). *)

val of_attribution :
  kernel:string ->
  ?critical_path:int list * float ->
  ?mem_levels:(string * int) list ->
  Attribution.t ->
  t
(** Summarize a bare engine-level run from its attribution collector (no
    {!Controller.report} required — [total_cycles] is the attributed total,
    there being no CPU side). [critical_path] is the chain to report (the
    refinement pass feeds the cost model's); [mem_levels] the hierarchy
    access mix if the caller kept the hierarchy around. *)

val closes : t -> bool
(** Every lane's bucket sum equals [attributed_cycles] and the totals row
    sums to [attributed_cycles * lanes] — the invariant tests and the CI
    smoke check enforce, also on profiles re-parsed from JSON. *)

val to_json : t -> Json.t
(** The stable [mesa-profile-v1] document. *)

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json}. *)

(** One regression found by {!diff}: a bucket (or the ["attributed"] cycle
    total) grew past its tolerance. *)
type violation = {
  v_key : string;        (** bucket name, or ["attributed"] *)
  v_before : int;
  v_after : int;
  v_limit : float;       (** the tolerance (percent) that was exceeded *)
}

val diff :
  ?tolerances:(string * float) list ->
  max_regress:float -> t -> t -> violation list
(** [diff ~max_regress before after] flags every bucket total (and the
    attributed-cycle total) that grew by more than its tolerance:
    [after > before + max(floor(before * limit / 100), floor(limit))] in
    exact integer arithmetic — so a 0 tolerance flags any increase, and a
    nonzero limit also grants that many absolute cycles (a bucket growing
    from zero would otherwise trip any percentage). [tolerances] overrides
    the limit per bucket name; everything else uses [max_regress].
    Decreases never flag. Returns the empty list when the gate passes. *)

val render_violations : violation list -> string

val render : t -> string
(** Human-readable report: cycle accounting, the bucket breakdown as a bar
    chart, per-PE utilization and NoC-link occupancy heatmaps
    ({!Chart.heat}), the II decomposition, and a closing one-liner naming
    the dominant bottleneck bucket, whether the loop is II-bound
    (recurrence) vs port-bound vs FU-bound, and the critical-path
    fraction. *)

val timeline : Attribution.t -> Trace.span list
(** Perfetto lanes: process/thread-name metadata plus one span per
    ring-buffered attributed interval — pid 1 carries one thread per fabric
    lane (PEs then load-store entries), pid 2 one thread per cache port.
    Controller spans (pid 0) are emitted by {!Controller.run} itself;
    concatenate [report.timeline @ timeline a] before
    {!Trace.to_chrome_json}. Idle and masked intervals are elided. *)
