(** The `mesad` daemon: a unix-socket front end for {!Service}.

    Transport is line-delimited JSON ({!Proto}): one request object per
    line, one response object per line. Each accepted connection gets a
    handler thread that serves its requests in order, so a client wanting
    [n] concurrent requests opens [n] connections (the load generator
    does). Worker parallelism comes from the service's domain pool, not
    from connection threads.

    Graceful drain (what SIGTERM triggers in the CLI): {!stop} stops
    accepting connections and admitting requests — late arrivals are shed
    with structured [overloaded] errors, never silence — finishes every
    in-flight request, flushes each written response before any socket
    closes, takes the final stats snapshot, then tears the listener down
    and removes the socket file. A response to an {e admitted} request is
    therefore never lost: it is written and flushed before the connection
    is shut down, so the client can always read it ahead of the EOF. *)

type t

val start : ?service_config:Service.config -> socket:string -> unit -> t
(** Bind [socket] (an existing {e socket} file at that path is replaced;
    any other file kind is an error), start the accept loop in a
    background thread and return immediately. Raises [Failure] or
    [Unix.Unix_error] on bind problems. *)

val service : t -> Service.t
val socket_path : t -> string

val stop : ?grace_s:float -> t -> Stats.snapshot
(** Graceful drain as described above; returns the final service stats.
    [grace_s] (default 5) bounds how long to wait, after all in-flight
    requests have settled, for handler threads still writing shed
    responses to clients that keep sending. Idempotent — later calls
    return the drained snapshot. *)
