(** Wire protocol of the `mesad` offload service.

    Transport is line-delimited JSON over a unix stream socket: each
    request is one JSON object on one line, each response one object on
    one line carrying the request's [id]. Requests on a single connection
    are served in order; clients wanting concurrency open one connection
    per in-flight request (the load generator does exactly that).

    Decoding is tolerant of unknown fields — a newer client may attach
    extras without breaking an older daemon — but the error taxonomy is
    {e closed}: every failure a request can experience maps to exactly one
    of the five {!error_kind}s, so failure modes are distinguishable and
    countable, and an unknown kind on the wire is a decode error, never a
    silent sixth category. The test suite pins the taxonomy strings as a
    golden list so the protocol cannot drift.

    Revision 2 adds the streaming verbs [watch] and [trace]: unlike the
    request/response ops, these turn the connection into a one-way stream
    of [frame]/[span] responses (all carrying the subscription's [id])
    terminated by a [done] response when the stream is finite. The error
    taxonomy is unchanged. *)

(** The closed error taxonomy. Keep in sync with the golden pin in
    [test/test_service.ml]; extending it is a protocol revision. *)
type error_kind =
  | Bad_request          (** malformed JSON, unknown op/kernel, bad spec *)
  | Deadline_exceeded    (** the per-request deadline elapsed *)
  | Overloaded           (** admission control shed the request (queue
                             full, or the daemon is draining) *)
  | Fabric_quarantined   (** every fabric shard's circuit breaker is open
                             and the request forbade CPU fallback *)
  | Internal             (** anything else — a bug; must stay at zero *)

val all_error_kinds : error_kind list
(** In taxonomy order, for exhaustive counting and the golden pin. *)

val error_kind_to_string : error_kind -> string
val error_kind_of_string : string -> (error_kind, string) result

type error = { kind : error_kind; message : string }

(** One loop-offload request. *)
type run_request = {
  id : int;
  kernel : string;               (** registry name (see `mesa_cli list`) *)
  deadline_ms : float option;    (** wall-clock budget; [None] = service
                                     default (possibly unbounded) *)
  inject : string option;        (** fault schedule for this run, in
                                     {!Fault.spec_of_string} syntax —
                                     chaos testing injects here *)
  fault_seed : int;              (** PRNG seed for drawn fault victims *)
  allow_fallback : bool;         (** permit CPU execution when no healthy
                                     fabric shard is available *)
}

val run_request : ?deadline_ms:float -> ?inject:string -> ?fault_seed:int ->
  ?allow_fallback:bool -> id:int -> string -> run_request
(** Defaults: no deadline, no injection, seed 0x5EED, fallback allowed. *)

(** A live-telemetry metrics subscription: the daemon answers with a
    stream of [frame] responses ({!body.Frame}, schema
    [mesa-telemetry-v1]) on the same connection, one per [interval_ms]
    tick, until [frames] have been sent ([None] = until the connection
    closes or the daemon drains), then a final {!body.End_stream}. Missed
    ticks (slow consumer) are shed, never queued — the frame's own
    [dropped] counter says how many. *)
type watch_request = {
  w_id : int;
  interval_ms : float;   (** frame cadence; default 250 *)
  frames : int option;   (** stop after this many frames; [None] = endless *)
}

val watch_request : ?interval_ms:float -> ?frames:int -> id:int -> unit ->
  watch_request

(** A lifecycle-span subscription: the daemon streams [span] responses
    ({!body.Span}) for every request lifecycle event from subscription
    time on, until [spans] have been sent ([None] = endless), then
    {!body.End_stream}. A consumer slower than the daemon's bounded span
    ring skips forward — spans are dropped in bulk, never reordered. *)
type trace_request = {
  t_id : int;
  spans : int option;    (** stop after this many spans; [None] = endless *)
}

val trace_request : ?spans:int -> id:int -> unit -> trace_request

type request =
  | Run of run_request
  | Get_stats of int   (** dump the service counter tree; payload is [id] *)
  | Ping of int
  | Watch of watch_request
  | Trace of trace_request

(** Where a successful request actually executed. *)
type site =
  | Fabric  (** offloaded through the controller on a fabric shard *)
  | Cpu     (** CPU-only fallback (all shards quarantined) *)

val site_to_string : site -> string

(** A successful run. [latency_ms] is wall-clock and excluded from the
    load generator's determinism digest; everything else is a pure
    function of (kernel, shard grid, inject, routing order). *)
type ok_body = {
  kernel : string;
  cycles : int;           (** modeled total cycles of the run *)
  offloads : int;
  mem_checksum : int;     (** FNV-1a over final memory *)
  shard : int;            (** executing shard, -1 for {!Cpu} *)
  site : site;
  rerouted : bool;        (** routing skipped at least one unhealthy shard *)
  retries : int;          (** service-level retry attempts consumed *)
  quarantines : int;      (** fabric quarantines during the final attempt *)
  faults_detected : int;
  latency_ms : float;
}

type body =
  | Ok_run of ok_body
  | Err of error
  | Stats_dump of Json.t
  | Pong
  | Frame of Json.t      (** one telemetry metrics frame (a watch stream) *)
  | Span of Json.t       (** one lifecycle span (a trace stream) *)
  | End_stream           (** a finite watch/trace stream completed *)

type response = { rsp_id : int; body : body }

(** {2 Codec} — total on the closed protocol, tolerant of unknown fields. *)

val request_to_json : request -> Json.t
val request_of_json : Json.t -> (request, string) result

val response_to_json : response -> Json.t
val response_of_json : Json.t -> (response, string) result

val request_to_line : request -> string
(** Compact single-line JSON (no embedded newline), ready to send. *)

val response_to_line : response -> string
