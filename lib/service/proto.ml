type error_kind =
  | Bad_request
  | Deadline_exceeded
  | Overloaded
  | Fabric_quarantined
  | Internal

let all_error_kinds =
  [ Bad_request; Deadline_exceeded; Overloaded; Fabric_quarantined; Internal ]

let error_kind_to_string = function
  | Bad_request -> "bad_request"
  | Deadline_exceeded -> "deadline_exceeded"
  | Overloaded -> "overloaded"
  | Fabric_quarantined -> "fabric_quarantined"
  | Internal -> "internal"

let error_kind_of_string s =
  match
    List.find_opt (fun k -> error_kind_to_string k = s) all_error_kinds
  with
  | Some k -> Ok k
  | None -> Error (Printf.sprintf "unknown error kind %S" s)

type error = { kind : error_kind; message : string }

type run_request = {
  id : int;
  kernel : string;
  deadline_ms : float option;
  inject : string option;
  fault_seed : int;
  allow_fallback : bool;
}

let run_request ?deadline_ms ?inject ?(fault_seed = 0x5EED)
    ?(allow_fallback = true) ~id kernel =
  { id; kernel; deadline_ms; inject; fault_seed; allow_fallback }

type watch_request = { w_id : int; interval_ms : float; frames : int option }

let watch_request ?(interval_ms = 250.0) ?frames ~id () =
  { w_id = id; interval_ms; frames }

type trace_request = { t_id : int; spans : int option }

let trace_request ?spans ~id () = { t_id = id; spans }

type request =
  | Run of run_request
  | Get_stats of int
  | Ping of int
  | Watch of watch_request
  | Trace of trace_request

type site = Fabric | Cpu

let site_to_string = function Fabric -> "fabric" | Cpu -> "cpu"

let site_of_string = function
  | "fabric" -> Ok Fabric
  | "cpu" -> Ok Cpu
  | s -> Error (Printf.sprintf "unknown execution site %S" s)

type ok_body = {
  kernel : string;
  cycles : int;
  offloads : int;
  mem_checksum : int;
  shard : int;
  site : site;
  rerouted : bool;
  retries : int;
  quarantines : int;
  faults_detected : int;
  latency_ms : float;
}

type body =
  | Ok_run of ok_body
  | Err of error
  | Stats_dump of Json.t
  | Pong
  | Frame of Json.t
  | Span of Json.t
  | End_stream

type response = { rsp_id : int; body : body }

(* ---------------- encoding ---------------- *)

let request_to_json = function
  | Ping id -> Json.Assoc [ ("op", Json.String "ping"); ("id", Json.Int id) ]
  | Get_stats id ->
    Json.Assoc [ ("op", Json.String "stats"); ("id", Json.Int id) ]
  | Watch w ->
    Json.Assoc
      ([
         ("op", Json.String "watch");
         ("id", Json.Int w.w_id);
         ("interval_ms", Json.Float w.interval_ms);
       ]
      @ match w.frames with None -> [] | Some n -> [ ("frames", Json.Int n) ])
  | Trace tr ->
    Json.Assoc
      ([ ("op", Json.String "trace"); ("id", Json.Int tr.t_id) ]
      @ match tr.spans with None -> [] | Some n -> [ ("spans", Json.Int n) ])
  | Run r ->
    Json.Assoc
      ([
         ("op", Json.String "run");
         ("id", Json.Int r.id);
         ("kernel", Json.String r.kernel);
       ]
      @ (match r.deadline_ms with
        | None -> []
        | Some d -> [ ("deadline_ms", Json.Float d) ])
      @ (match r.inject with
        | None -> []
        | Some s -> [ ("inject", Json.String s) ])
      @ [
          ("fault_seed", Json.Int r.fault_seed);
          ("allow_fallback", Json.Bool r.allow_fallback);
        ])

let ok_body_to_json (b : ok_body) =
  Json.Assoc
    [
      ("kernel", Json.String b.kernel);
      ("cycles", Json.Int b.cycles);
      ("offloads", Json.Int b.offloads);
      ("mem_checksum", Json.Int b.mem_checksum);
      ("shard", Json.Int b.shard);
      ("site", Json.String (site_to_string b.site));
      ("rerouted", Json.Bool b.rerouted);
      ("retries", Json.Int b.retries);
      ("quarantines", Json.Int b.quarantines);
      ("faults_detected", Json.Int b.faults_detected);
      ("latency_ms", Json.Float b.latency_ms);
    ]

let response_to_json { rsp_id; body } =
  let fields =
    match body with
    | Ok_run b -> [ ("ok", ok_body_to_json b) ]
    | Err e ->
      [
        ( "error",
          Json.Assoc
            [
              ("kind", Json.String (error_kind_to_string e.kind));
              ("message", Json.String e.message);
            ] );
      ]
    | Stats_dump j -> [ ("stats", j) ]
    | Pong -> [ ("pong", Json.Bool true) ]
    | Frame j -> [ ("frame", j) ]
    | Span j -> [ ("span", j) ]
    | End_stream -> [ ("done", Json.Bool true) ]
  in
  Json.Assoc (("id", Json.Int rsp_id) :: fields)

(* ---------------- decoding ---------------- *)

let ( let* ) = Result.bind

(* Every accessor ignores fields it does not know: forward compatibility.
   Missing *required* fields are decode errors. *)

let field_int ?default name j =
  match Json.member name j with
  | None -> (
    match default with
    | Some d -> Ok d
    | None -> Error (Printf.sprintf "missing field %S" name))
  | Some v -> (
    match Json.to_int v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "field %S is not an integer" name))

let field_string name j =
  match Json.member name j with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
    match Json.to_string_opt v with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "field %S is not a string" name))

let field_bool ~default name j =
  match Json.member name j with
  | None -> Ok default
  | Some (Json.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "field %S is not a boolean" name)

let opt_field_float name j =
  match Json.member name j with
  | None -> Ok None
  | Some v -> (
    match Json.to_float v with
    | Some f -> Ok (Some f)
    | None -> Error (Printf.sprintf "field %S is not a number" name))

let opt_field_string name j =
  match Json.member name j with
  | None -> Ok None
  | Some v -> (
    match Json.to_string_opt v with
    | Some s -> Ok (Some s)
    | None -> Error (Printf.sprintf "field %S is not a string" name))

let run_request_of_json j =
  let* id = field_int "id" j in
  let* kernel = field_string "kernel" j in
  let* deadline_ms = opt_field_float "deadline_ms" j in
  let* () =
    match deadline_ms with
    | Some d when not (d > 0.0) ->
      Error "field \"deadline_ms\" must be positive"
    | _ -> Ok ()
  in
  let* inject = opt_field_string "inject" j in
  let* fault_seed = field_int ~default:0x5EED "fault_seed" j in
  let* allow_fallback = field_bool ~default:true "allow_fallback" j in
  Ok { id; kernel; deadline_ms; inject; fault_seed; allow_fallback }

let request_of_json j =
  match j with
  | Json.Assoc _ ->
    (* A missing op means "run" — the common case stays terse. *)
    let op =
      match Json.member "op" j with
      | None -> Ok "run"
      | Some v -> (
        match Json.to_string_opt v with
        | Some s -> Ok s
        | None -> Error "field \"op\" is not a string")
    in
    let* op = op in
    (match op with
    | "run" -> Result.map (fun r -> Run r) (run_request_of_json j)
    | "stats" -> Result.map (fun id -> Get_stats id) (field_int "id" j)
    | "ping" -> Result.map (fun id -> Ping id) (field_int "id" j)
    | "watch" ->
      let* id = field_int "id" j in
      let* interval_ms = opt_field_float "interval_ms" j in
      let interval_ms = Option.value interval_ms ~default:250.0 in
      let* () =
        if interval_ms > 0.0 then Ok ()
        else Error "field \"interval_ms\" must be positive"
      in
      let* frames =
        match Json.member "frames" j with
        | None -> Ok None
        | Some v -> (
          match Json.to_int v with
          | Some n when n > 0 -> Ok (Some n)
          | Some _ -> Error "field \"frames\" must be positive"
          | None -> Error "field \"frames\" is not an integer")
      in
      Ok (Watch { w_id = id; interval_ms; frames })
    | "trace" ->
      let* id = field_int "id" j in
      let* spans =
        match Json.member "spans" j with
        | None -> Ok None
        | Some v -> (
          match Json.to_int v with
          | Some n when n > 0 -> Ok (Some n)
          | Some _ -> Error "field \"spans\" must be positive"
          | None -> Error "field \"spans\" is not an integer")
      in
      Ok (Trace { t_id = id; spans })
    | other -> Error (Printf.sprintf "unknown op %S" other))
  | _ -> Error "request is not a JSON object"

let ok_body_of_json j =
  let* kernel = field_string "kernel" j in
  let* cycles = field_int "cycles" j in
  let* offloads = field_int "offloads" j in
  let* mem_checksum = field_int "mem_checksum" j in
  let* shard = field_int "shard" j in
  let* site = Result.bind (field_string "site" j) site_of_string in
  let* rerouted = field_bool ~default:false "rerouted" j in
  let* retries = field_int ~default:0 "retries" j in
  let* quarantines = field_int ~default:0 "quarantines" j in
  let* faults_detected = field_int ~default:0 "faults_detected" j in
  let* latency_ms =
    match Json.member "latency_ms" j with
    | None -> Ok 0.0
    | Some v -> (
      match Json.to_float v with
      | Some f -> Ok f
      | None -> Error "field \"latency_ms\" is not a number")
  in
  Ok
    {
      kernel;
      cycles;
      offloads;
      mem_checksum;
      shard;
      site;
      rerouted;
      retries;
      quarantines;
      faults_detected;
      latency_ms;
    }

let response_of_json j =
  match j with
  | Json.Assoc _ ->
    let* rsp_id = field_int "id" j in
    let* body =
      match
        ( Json.member "ok" j,
          Json.member "error" j,
          Json.member "stats" j,
          Json.member "pong" j )
      with
      | Some b, _, _, _ -> Result.map (fun b -> Ok_run b) (ok_body_of_json b)
      | None, Some e, _, _ ->
        let* kind = Result.bind (field_string "kind" e) error_kind_of_string in
        let* message = field_string "message" e in
        Ok (Err { kind; message })
      | None, None, Some s, _ -> Ok (Stats_dump s)
      | None, None, None, Some _ -> Ok Pong
      | None, None, None, None -> (
        match
          (Json.member "frame" j, Json.member "span" j, Json.member "done" j)
        with
        | Some f, _, _ -> Ok (Frame f)
        | None, Some s, _ -> Ok (Span s)
        | None, None, Some _ -> Ok End_stream
        | None, None, None ->
          Error "response has none of ok/error/stats/pong/frame/span/done")
    in
    Ok { rsp_id; body }
  | _ -> Error "response is not a JSON object"

let request_to_line r = Json.to_string ~indent:0 (request_to_json r)
let response_to_line r = Json.to_string ~indent:0 (response_to_json r)
