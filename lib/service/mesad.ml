type t = {
  svc : Service.t;
  path : string;
  listen_fd : Unix.file_descr;
  lock : Mutex.t;
  idle : Condition.t;          (* active request count dropped *)
  mutable stopping : bool;
  mutable active : int;        (* requests between read and flushed write *)
  mutable conns : Unix.file_descr list;
  mutable handlers : Thread.t list;
  mutable accept_thread : Thread.t option;
  mutable final : Stats.snapshot option;
}

let service t = t.svc
let socket_path t = t.path

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Best-effort id recovery from a line that failed full decoding, so even
   a malformed request's error response carries the caller's id. *)
let salvage_id j =
  match Json.member "id" j with
  | Some v -> Option.value (Json.to_int v) ~default:0
  | None -> 0

(* What one request line asks the handler to do: answer once, or turn the
   connection into a telemetry stream. *)
type action =
  | Respond of Proto.response
  | Stream_watch of Proto.watch_request
  | Stream_trace of Proto.trace_request

let handle_line t line =
  match Json.of_string line with
  | Error e ->
    Respond
      { Proto.rsp_id = 0;
        body = Service.bad_request t.svc ("unparseable request: " ^ e) }
  | Ok j -> (
    match Proto.request_of_json j with
    | Error e ->
      Respond
        { Proto.rsp_id = salvage_id j;
          body = Service.bad_request t.svc ("bad request: " ^ e) }
    | Ok (Proto.Ping id) -> Respond { Proto.rsp_id = id; body = Proto.Pong }
    | Ok (Proto.Get_stats id) ->
      Respond
        { Proto.rsp_id = id;
          body = Proto.Stats_dump (Stats.to_json (Service.stats t.svc)) }
    | Ok (Proto.Run r) ->
      Respond { Proto.rsp_id = r.Proto.id; body = Service.execute t.svc r }
    | Ok (Proto.Watch w) -> Stream_watch w
    | Ok (Proto.Trace tr) -> Stream_trace tr)

let stopping t = locked t (fun () -> t.stopping)

let write_response oc rsp =
  output_string oc (Proto.response_to_line rsp);
  output_char oc '\n';
  flush oc

(* Both stream loops return [`Done] when the subscription's own limit
   ended it (the client may send another request on this connection) and
   [`Close] when the daemon is stopping or the client went away. Writes
   can always raise [Sys_error]/[Unix_error] mid-stream; callers treat
   that as [`Close]. *)

let watch_stream t oc (w : Proto.watch_request) =
  let hub = Service.telemetry t.svc in
  let watcher = Telemetry.watcher hub in
  let interval_s = w.Proto.interval_ms /. 1000.0 in
  let write_frame () =
    let frame = Telemetry.next_frame hub watcher (Service.stats t.svc) in
    write_response oc
      { Proto.rsp_id = w.Proto.w_id;
        body = Proto.Frame (Telemetry.frame_to_json frame) }
  in
  (* Sleep in short slices so a drain never waits on a sleeping stream. *)
  let rec pause until =
    let now = Unix.gettimeofday () in
    if now < until && not (stopping t) then begin
      Unix.sleepf (Float.min 0.05 (until -. now));
      pause until
    end
  in
  let finite = w.Proto.frames <> None in
  let limit = Option.value w.Proto.frames ~default:max_int in
  let rec loop sent next_due =
    if sent >= limit then `Done
    else if stopping t then `Close
    else begin
      pause next_due;
      if stopping t then `Close
      else begin
        (* A consumer slower than the cadence sheds the missed ticks —
           the schedule jumps forward and the frame says how many. *)
        let now = Unix.gettimeofday () in
        let missed =
          if now > next_due +. interval_s then
            int_of_float ((now -. next_due) /. interval_s)
          else 0
        in
        if missed > 0 then Telemetry.note_missed watcher missed;
        write_frame ();
        loop (sent + 1) (next_due +. (float_of_int (missed + 1) *. interval_s))
      end
    end
  in
  write_frame ();
  let outcome = loop 1 (Unix.gettimeofday () +. interval_s) in
  if outcome = `Done && finite then
    write_response oc { Proto.rsp_id = w.Proto.w_id; body = Proto.End_stream };
  outcome

let trace_stream t oc (tr : Proto.trace_request) =
  let hub = Service.telemetry t.svc in
  let cursor = Telemetry.subscribe hub in
  let finite = tr.Proto.spans <> None in
  let limit = Option.value tr.Proto.spans ~default:max_int in
  let rec loop sent =
    if sent >= limit then `Done
    else if stopping t then `Close
    else begin
      let spans = Telemetry.poll hub cursor ~max:(min 64 (limit - sent)) in
      if spans = [] then begin
        Unix.sleepf 0.05;
        loop sent
      end
      else begin
        List.iter
          (fun sp ->
            write_response oc
              { Proto.rsp_id = tr.Proto.t_id;
                body = Proto.Span (Telemetry.span_to_json sp) })
          spans;
        loop (sent + List.length spans)
      end
    end
  in
  let outcome = loop 0 in
  if outcome = `Done && finite then
    write_response oc
      { Proto.rsp_id = tr.Proto.t_id; body = Proto.End_stream };
  outcome

let handler t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec serve () =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> ()
    | line ->
      if String.trim line = "" then serve ()
      else begin
        locked t (fun () -> t.active <- t.active + 1);
        let finished = ref false in
        let finish () =
          if not !finished then begin
            finished := true;
            locked t (fun () ->
                t.active <- t.active - 1;
                Condition.broadcast t.idle)
          end
        in
        (* The active count brackets the dispatch (and, for [Respond], the
           flushed write) — the drain guarantee. Stream loops run outside
           it: they are long-lived and poll [stopping] on every tick, so a
           drain never waits on one; it sees the flag and winds down
           within a tick. *)
        (match
           match handle_line t line with
           | Respond rsp ->
             write_response oc rsp;
             finish ();
             `Done
           | Stream_watch w ->
             finish ();
             watch_stream t oc w
           | Stream_trace tr ->
             finish ();
             trace_stream t oc tr
         with
        | `Done -> serve ()
        | `Close -> ()
        | exception (Sys_error _ | Unix.Unix_error _) ->
          (* Client went away mid-write; nothing left to serve. [finish]
             is idempotent, so this is safe whether the write died inside
             or after the active bracket. *)
          finish ())
      end
  in
  serve ();
  (try Unix.close fd with Unix.Unix_error _ -> ());
  locked t (fun () -> t.conns <- List.filter (fun c -> c <> fd) t.conns)

let accept_loop t =
  let rec loop () =
    let stop = locked t (fun () -> t.stopping) in
    if not stop then begin
      match Unix.select [ t.listen_fd ] [] [] 0.25 with
      | [], _, _ -> loop ()
      | _ :: _, _, _ -> (
        match Unix.accept t.listen_fd with
        | exception Unix.Unix_error _ -> loop ()
        | fd, _ ->
          let th = Thread.create (fun () -> handler t fd) () in
          locked t (fun () ->
              t.conns <- fd :: t.conns;
              t.handlers <- th :: t.handlers);
          loop ())
    end
  in
  loop ();
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink t.path with Unix.Unix_error _ | Sys_error _ -> ())

let start ?service_config ~socket () =
  (* A client vanishing mid-write — routine for long-lived watch/trace
     streams — must surface as EPIPE on the write (the handlers catch it
     and close the connection), not as a process-killing SIGPIPE. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (match Unix.stat socket with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink socket
  | _ -> failwith (socket ^ ": exists and is not a socket")
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind listen_fd (Unix.ADDR_UNIX socket)
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen listen_fd 64;
  let svc =
    match service_config with
    | None -> Service.create ()
    | Some c -> Service.create ~config:c ()
  in
  let t =
    {
      svc;
      path = socket;
      listen_fd;
      lock = Mutex.create ();
      idle = Condition.create ();
      stopping = false;
      active = 0;
      conns = [];
      handlers = [];
      accept_thread = None;
      final = None;
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let stop ?(grace_s = 5.0) t =
  match locked t (fun () -> t.final) with
  | Some snap -> snap
  | None ->
    locked t (fun () -> t.stopping <- true);
    (* 1. No new admissions: everything arriving from here is shed with a
       structured overloaded error. *)
    Service.begin_drain t.svc;
    (* 2. Finish the in-flight requests — this is the drain guarantee; the
       responses are written and flushed by their handler threads. *)
    ignore (Service.drain t.svc);
    (* 3. Give handlers still answering post-drain traffic (shed responses
       to clients that keep sending) a bounded window to go idle. *)
    let deadline = Unix.gettimeofday () +. grace_s in
    let rec settle () =
      let busy = locked t (fun () -> t.active > 0) in
      if busy && Unix.gettimeofday () < deadline then begin
        Unix.sleepf 0.01;
        settle ()
      end
    in
    settle ();
    (* 4. Tear down: wake blocked readers, join everything. *)
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    let conns = locked t (fun () -> t.conns) in
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    let handlers = locked t (fun () -> t.handlers) in
    List.iter Thread.join handlers;
    (* Shutdown joins the background refiner, so the snapshot taken after
       it includes every refine verdict — the count the CI gate closes
       watch frames against. *)
    Service.shutdown t.svc;
    let snap = Service.stats t.svc in
    locked t (fun () -> t.final <- Some snap);
    snap
