type t = {
  svc : Service.t;
  path : string;
  listen_fd : Unix.file_descr;
  lock : Mutex.t;
  idle : Condition.t;          (* active request count dropped *)
  mutable stopping : bool;
  mutable active : int;        (* requests between read and flushed write *)
  mutable conns : Unix.file_descr list;
  mutable handlers : Thread.t list;
  mutable accept_thread : Thread.t option;
  mutable final : Stats.snapshot option;
}

let service t = t.svc
let socket_path t = t.path

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Best-effort id recovery from a line that failed full decoding, so even
   a malformed request's error response carries the caller's id. *)
let salvage_id j =
  match Json.member "id" j with
  | Some v -> Option.value (Json.to_int v) ~default:0
  | None -> 0

let handle_line t line =
  match Json.of_string line with
  | Error e ->
    { Proto.rsp_id = 0;
      body = Service.bad_request t.svc ("unparseable request: " ^ e) }
  | Ok j -> (
    match Proto.request_of_json j with
    | Error e ->
      { Proto.rsp_id = salvage_id j;
        body = Service.bad_request t.svc ("bad request: " ^ e) }
    | Ok (Proto.Ping id) -> { Proto.rsp_id = id; body = Proto.Pong }
    | Ok (Proto.Get_stats id) ->
      { Proto.rsp_id = id;
        body = Proto.Stats_dump (Stats.to_json (Service.stats t.svc)) }
    | Ok (Proto.Run r) ->
      { Proto.rsp_id = r.Proto.id; body = Service.execute t.svc r })

let handler t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec serve () =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> ()
    | line ->
      if String.trim line = "" then serve ()
      else begin
        locked t (fun () -> t.active <- t.active + 1);
        let finish () =
          locked t (fun () ->
              t.active <- t.active - 1;
              Condition.broadcast t.idle)
        in
        (match
           let rsp = handle_line t line in
           output_string oc (Proto.response_to_line rsp);
           output_char oc '\n';
           flush oc
         with
        | () -> finish (); serve ()
        | exception (Sys_error _ | Unix.Unix_error _) ->
          (* Client went away mid-write; nothing left to serve. *)
          finish ())
      end
  in
  serve ();
  (try Unix.close fd with Unix.Unix_error _ -> ());
  locked t (fun () -> t.conns <- List.filter (fun c -> c <> fd) t.conns)

let accept_loop t =
  let rec loop () =
    let stop = locked t (fun () -> t.stopping) in
    if not stop then begin
      match Unix.select [ t.listen_fd ] [] [] 0.25 with
      | [], _, _ -> loop ()
      | _ :: _, _, _ -> (
        match Unix.accept t.listen_fd with
        | exception Unix.Unix_error _ -> loop ()
        | fd, _ ->
          let th = Thread.create (fun () -> handler t fd) () in
          locked t (fun () ->
              t.conns <- fd :: t.conns;
              t.handlers <- th :: t.handlers);
          loop ())
    end
  in
  loop ();
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink t.path with Unix.Unix_error _ | Sys_error _ -> ())

let start ?service_config ~socket () =
  (match Unix.stat socket with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink socket
  | _ -> failwith (socket ^ ": exists and is not a socket")
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind listen_fd (Unix.ADDR_UNIX socket)
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen listen_fd 64;
  let svc =
    match service_config with
    | None -> Service.create ()
    | Some c -> Service.create ~config:c ()
  in
  let t =
    {
      svc;
      path = socket;
      listen_fd;
      lock = Mutex.create ();
      idle = Condition.create ();
      stopping = false;
      active = 0;
      conns = [];
      handlers = [];
      accept_thread = None;
      final = None;
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let stop ?(grace_s = 5.0) t =
  match locked t (fun () -> t.final) with
  | Some snap -> snap
  | None ->
    locked t (fun () -> t.stopping <- true);
    (* 1. No new admissions: everything arriving from here is shed with a
       structured overloaded error. *)
    Service.begin_drain t.svc;
    (* 2. Finish the in-flight requests — this is the drain guarantee; the
       responses are written and flushed by their handler threads. *)
    let snap = Service.drain t.svc in
    (* 3. Give handlers still answering post-drain traffic (shed responses
       to clients that keep sending) a bounded window to go idle. *)
    let deadline = Unix.gettimeofday () +. grace_s in
    let rec settle () =
      let busy = locked t (fun () -> t.active > 0) in
      if busy && Unix.gettimeofday () < deadline then begin
        Unix.sleepf 0.01;
        settle ()
      end
    in
    settle ();
    (* 4. Tear down: wake blocked readers, join everything. *)
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    let conns = locked t (fun () -> t.conns) in
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    let handlers = locked t (fun () -> t.handlers) in
    List.iter Thread.join handlers;
    Service.shutdown t.svc;
    locked t (fun () -> t.final <- Some snap);
    snap
