(** The live-telemetry hub behind mesad's [watch] and [trace] verbs.

    One hub per service collects three things, all under one lock:

    - {b Lifecycle spans}: every request emits admit / queue / translate /
      execute / retry / breaker / resolve events (plus profile-window,
      oracle-refresh and refine events from the feedback loop) into a
      bounded ring. Trace subscribers read the ring through a {!cursor};
      a consumer slower than the producer is skipped forward — spans are
      shed in bulk and counted, but the ones delivered are always in
      sequence order with their original sequence numbers (the shedding
      guarantee the test suite pins).
    - {b Windowed sketches}: per-outcome service latency and per-kernel
      simulated-cycle distributions in {!Sketch} sliding windows, rotated
      on a wall-clock cadence ([window_ms] per sub-window). The sketches
      themselves never read a clock — the hub injects time through the
      [clock] function, so tests drive it deterministically.
    - {b Frames}: a {!watcher} turns the hub plus a service stats
      snapshot into a {!frame} (schema [mesa-telemetry-v1]): monotone
      per-watcher sequence number, per-outcome totals/deltas/window
      quantiles, per-kernel cycle quantiles with profile-window and
      refine counts, and the raw integer-counter deltas and totals of the
      [service] and [telemetry] stats groups. A watcher's baseline starts
      empty, so the per-outcome deltas summed over its whole stream equal
      the final totals — the closure property the CI gate checks.

    Everything is observation: nothing in this module feeds back into
    request execution, so a service with telemetry idle is bit-identical
    in cycles, memory and registers to one without it. *)

(** Lifecycle phases, in request order; the last three come from the
    profiling-window → oracle → refine feedback loop. *)
type phase =
  | Admit            (** passed admission control *)
  | Queue            (** worker picked the request up *)
  | Translate        (** warm-memo / translation step on a shard *)
  | Execute          (** fabric or CPU execution finished *)
  | Retry            (** service-level retry after a quarantining run *)
  | Breaker          (** a shard breaker transition (detail: trip/...) *)
  | Resolve          (** final taxonomy outcome decided *)
  | Profile_window   (** a profiled run captured a measured snapshot *)
  | Oracle_refresh   (** measured oracles handed to the refiner *)
  | Refine           (** background refine finished (detail: accept/...) *)

val phase_to_string : phase -> string
val phase_of_string : string -> (phase, string) result

type span = {
  sp_seq : int;        (** global, monotone, gap-free at the producer *)
  sp_at_ms : float;    (** hub clock at emission *)
  sp_req : int;        (** request id; -1 when not request-scoped *)
  sp_kernel : string;  (** "" when unknown *)
  sp_shard : int;      (** -1 when not shard-scoped *)
  sp_phase : phase;
  sp_outcome : string; (** "" before resolve *)
  sp_detail : string;
}

val span_to_json : span -> Json.t
val span_of_json : Json.t -> (span, string) result

val to_trace_span : span -> Trace.span
(** Perfetto projection: category ["service"], timestamp the hub clock in
    ms, one thread lane per shard (lane 0 for unscoped events). *)

type t

val create :
  ?ring:int -> ?windows:int -> ?window_ms:float -> ?clock:(unit -> float) ->
  unit -> t
(** [ring] spans kept for trace subscribers (default 4096), [windows]
    sketch sub-windows (default 8) of [window_ms] each (default 250 —
    a 2 s sliding window), [clock] the millisecond time source (default:
    wall clock since creation). Raises [Invalid_argument] on a
    non-positive ring, windows or window_ms. *)

val emit :
  t -> ?req:int -> ?kernel:string -> ?shard:int -> ?outcome:string ->
  ?detail:string -> phase -> unit
(** Append one span to the ring (O(1); overwrites the oldest). *)

val observe_latency : t -> outcome:string -> float -> unit
(** Record a resolved request's wall-clock latency (ms) into that
    outcome's window sketch. *)

val observe_cycles : t -> kernel:string -> int -> unit
(** Record a successful run's simulated cycles into the kernel's window
    sketch. *)

val note_profile_window : t -> kernel:string -> unit
val note_refine_accept : t -> kernel:string -> unit

val spans_emitted : t -> int
(** Total spans ever emitted (the next sequence number). *)

(** {2 Trace subscriptions} *)

type cursor

val subscribe : t -> cursor
(** A cursor starting at the next span to be emitted (no history replay). *)

val poll : t -> cursor -> max:int -> span list
(** Up to [max] spans the cursor has not yet seen, oldest first. If the
    producer lapped the cursor, it first jumps to the oldest retained
    span, adding the skipped count to {!cursor_dropped} — delivered spans
    keep their original order and sequence numbers. *)

val cursor_dropped : cursor -> int
(** Spans shed by ring overrun for this subscriber so far. *)

(** {2 Watch frames} *)

type quantiles = {
  q_count : int;   (** observations in the sliding window *)
  q_p50 : float;
  q_p90 : float;
  q_p99 : float;
  q_max : float;   (** exact window maximum *)
}

type outcome_row = {
  o_total : int;          (** cumulative count from the stats snapshot *)
  o_delta : int;          (** increment since this watcher's last frame *)
  o_window : quantiles;   (** latency (ms) over the sliding window *)
}

type kernel_row = {
  k_window : quantiles;        (** simulated cycles over the window *)
  k_profile_windows : int;     (** profiled runs captured for this kernel *)
  k_refine_accepts : int;      (** background refinements installed *)
}

type frame = {
  f_seq : int;                 (** per-watcher, monotone from 0 *)
  f_at_ms : float;
  f_dropped : int;             (** ticks this watcher shed (cumulative) *)
  f_outcomes : (string * outcome_row) list;
      (** "ok" plus every taxonomy kind, all present *)
  f_kernels : (string * kernel_row) list;
  f_deltas : (string * int) list;
      (** integer counters under [service.]/[telemetry.] that moved since
          the last frame *)
  f_totals : (string * int) list;
      (** every integer counter under [service.]/[telemetry.] *)
}

val frame_to_json : frame -> Json.t
(** Schema [mesa-telemetry-v1]. *)

val frame_of_json : Json.t -> (frame, string) result
(** Inverse of {!frame_to_json} — what `mesa_cli top`/`watch` and the CI
    gate parse. *)

type watcher

val watcher : t -> watcher
(** Per-subscription state: frame sequence 0, empty stats baseline (so
    the first frame's deltas equal the totals so far). *)

val note_missed : watcher -> int -> unit
(** Record [n] shed frame ticks (slow consumer); surfaces as
    [f_dropped]. *)

val next_frame : t -> watcher -> Stats.snapshot -> frame
(** Build the watcher's next frame against [snapshot] (the service's
    current stats) and advance its baseline. *)
