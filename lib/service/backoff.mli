(** Seeded exponential backoff with full jitter, for the service's retry
    ladder.

    Attempt [k] draws a delay uniformly from
    [\[0, min (cap_ms, base_ms * factor^k))] using one splitmix PRNG, so a
    request's whole retry schedule is a pure function of its seed — the
    load generator's determinism digest relies on this (delays affect only
    wall-clock latency, which the digest excludes, but the *number* of
    draws must still be reproducible). *)

type t

val create :
  ?base_ms:float -> ?cap_ms:float -> ?factor:float -> seed:int -> unit -> t
(** Defaults: base 1 ms, cap 20 ms, factor 2. Raises [Invalid_argument] on
    a non-positive base/cap or a factor below 1. *)

val next_ms : t -> float
(** The jittered delay for the next attempt, advancing the attempt
    counter. *)

val attempt : t -> int
(** Attempts drawn so far. *)
