(** The `mesad` service core: admission control, routing, deadlines,
    retries and fabric health for loop-offload requests, independent of
    any transport ({!Mesad} puts a unix socket in front of it).

    One service owns [shards] logical fabric instances (identical grids)
    and a {!Pool} of worker domains. A request's life:

    + {b Validate} — unknown kernel or malformed inject spec is a
      [bad_request]; the kernel's hot-loop translation comes from
      {!Runner}'s process-wide memo, so it is warm after the first request
      (or immediately, when [warm] pre-translates the whole registry).
    + {b Admit} — at most [queue_depth] requests may be in flight;
      beyond that (or while draining) the request is shed with a
      structured [overloaded] error immediately — load shedding never
      blocks and never hangs.
    + {b Route} — round-robin over shards whose {!Breaker} admits
      traffic (closed, or half-open granting its single probe). When every
      shard is open: CPU fallback if the request allows it, else a
      [fabric_quarantined] error.
    + {b Execute} — the full controller pipeline on the shard's grid,
      composing the engine's forward-progress watchdog
      ([watchdog_window]); a fault schedule from the request is armed for
      the first attempt only (it models an environmental strike, not a
      property of the request).
    + {b Recover} — a run that quarantined its fabric still returns
      architecturally correct results (PR 2's in-run ladder), but the
      shard's breaker records the fault, and the service retries on
      another healthy shard after a seeded jittered backoff
      ({!Backoff}) up to [max_retries] times, preferring a clean fabric
      result over the degraded one.
    + {b Deadline} — the caller's wall-clock budget is enforced with
      {!Pool.await_timeout}; an expired request resolves to
      [deadline_exceeded] while its worker task, if already running, is
      abandoned (it checks a cancel flag before starting and between
      retries, and the engine watchdog bounds a wedged fabric window).

    Every request resolves to exactly one taxonomy outcome, counted in
    the [service] stats group; [internal] must stay at zero. *)

type config = {
  shards : int;            (** logical fabric instances *)
  shard_pes : int;         (** PEs per shard grid *)
  jobs : int;              (** worker domains executing requests *)
  queue_depth : int;       (** max in-flight requests before shedding *)
  max_retries : int;       (** service-level retry budget per request *)
  backoff_base_ms : float;
  backoff_cap_ms : float;
  breaker : Breaker.config;
  seed : int;              (** master seed for per-request backoff jitter *)
  default_deadline_ms : float option;
      (** applied when a request carries no deadline; [None] = unbounded *)
  watchdog_window : int;   (** engine forward-progress watchdog, per run *)
  warm : bool;             (** pre-translate the kernel registry at create *)
  profile_window : int option;
      (** [Some n]: every [n]-th clean-environment run executes with the
          attribution collector armed (pure observation — cycles, memory
          and registers stay bit-identical); each captured window feeds the
          cost model's measured oracles into a background refine pass
          whose engine- and controller-confirmed placements are swapped
          into the warm translation memo ({!Runner.swap_placement}), so
          subsequent requests for that kernel can only get faster.
          Counted in the [telemetry] stats group. [None] (default): no
          profiling, no refiner thread. *)
}

val default_config : config
(** 4 shards of 64 PEs, jobs = {!Pool.default_jobs}, queue depth 64,
    2 retries, 1-20 ms backoff, default breaker, no default deadline,
    watchdog 512, warm, no profiling windows. *)

type t

val create : ?config:config -> unit -> t
(** Raises [Invalid_argument] on a nonsensical config (no shards, empty
    queue, negative retries, invalid breaker). *)

val config : t -> config

val execute : t -> Proto.run_request -> Proto.body
(** Serve one request to completion (blocking; call from any number of
    threads). Always returns [Ok_run] or [Err] with a taxonomy kind —
    never raises, never hangs past the request's deadline. *)

val bad_request : t -> string -> Proto.body
(** Count and build a [bad_request] error for transport-level failures
    (unparseable line, unknown op) so protocol errors land in the same
    taxonomy counters as request-level ones. *)

val stats : t -> Stats.snapshot
(** Point-in-time readout of the [service] group (outcomes, breaker
    transitions, queue, execution mix, memo) and the [telemetry] group
    (profiling windows, oracle refreshes, refine accepts/rejects, memo
    swaps, spans emitted). *)

val telemetry : t -> Telemetry.t
(** The service's live-telemetry hub: every request emits lifecycle spans
    into it and its windowed sketches back the [watch] frames. *)

val set_on_window : t -> (Stats.snapshot -> unit) -> unit
(** Hook fired (from the worker thread, outside the service lock) with a
    fresh stats snapshot each time a profiling window completes — the
    `serve --stats-out` atomic flush rides on it. Default: no-op. *)

val refine_backlog : t -> int
(** Refine jobs queued or in flight — 0 means every captured window has
    been fully processed. *)

val draining : t -> bool

val begin_drain : t -> unit
(** Stop admitting: every subsequent {!execute} resolves to [overloaded]
    immediately. In-flight requests keep running. Idempotent. *)

val drain : t -> Stats.snapshot
(** {!begin_drain}, then block until every in-flight request has settled;
    returns the final stats snapshot. *)

val shutdown : t -> unit
(** {!drain} and release the worker pool. The service refuses requests
    afterwards (they shed as [overloaded]). Idempotent. *)
