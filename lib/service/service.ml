type config = {
  shards : int;
  shard_pes : int;
  jobs : int;
  queue_depth : int;
  max_retries : int;
  backoff_base_ms : float;
  backoff_cap_ms : float;
  breaker : Breaker.config;
  seed : int;
  default_deadline_ms : float option;
  watchdog_window : int;
  warm : bool;
  profile_window : int option;
}

let default_config =
  {
    shards = 4;
    shard_pes = 64;
    jobs = Pool.default_jobs ();
    queue_depth = 64;
    max_retries = 2;
    backoff_base_ms = 1.0;
    backoff_cap_ms = 20.0;
    breaker = Breaker.default_config;
    seed = 0x5EED;
    default_deadline_ms = None;
    watchdog_window = 512;
    warm = true;
    profile_window = None;
  }

type shard = { sh_id : int; sh_grid : Grid.t; sh_breaker : Breaker.t }

(* Counter handles, created once at registration. *)
type counters = {
  admitted : Stats.counter;
  shed : Stats.counter;
  ok : Stats.counter;
  bad_request : Stats.counter;
  deadline_exceeded : Stats.counter;
  overloaded : Stats.counter;
  fabric_quarantined : Stats.counter;
  internal : Stats.counter;
  exec_fabric : Stats.counter;
  exec_cpu_fallback : Stats.counter;
  exec_rerouted : Stats.counter;
  exec_retries : Stats.counter;
  exec_retry_successes : Stats.counter;
  exec_abandoned : Stats.counter;
  backoff_ms : Stats.histogram;
  br_trips : Stats.counter;
  br_reopens : Stats.counter;
  br_recloses : Stats.counter;
  br_probes : Stats.counter;
  br_faults : Stats.counter;
  tel_profile_windows : Stats.counter;
  tel_oracle_refreshes : Stats.counter;
  tel_refine_attempts : Stats.counter;
  tel_refine_accepts : Stats.counter;
  tel_refine_rejects : Stats.counter;
  tel_memo_swaps : Stats.counter;
}

(* One unit of background-refinement work: the measured per-node snapshot a
   profiling window captured, plus the controller-path cycles of that same
   run — the never-regress bar any accepted placement must clear. *)
type refine_job = {
  rj_kernel : string;
  rj_measured : Stats.snapshot;
  rj_cycles : int;
}

type t = {
  cfg : config;
  pool : Pool.t;
  shards : shard array;
  lock : Mutex.t;
  settled : Condition.t;   (* an in-flight request finished *)
  mutable inflight : int;
  mutable peak : int;
  mutable is_draining : bool;
  mutable shut : bool;
  mutable rr : int;        (* round-robin routing cursor *)
  mutable ticket : int;    (* admission ordinal; seeds per-request jitter *)
  reg : Stats.registry;
  c : counters;
  telemetry : Telemetry.t;
  (* Accepted background refinements, by kernel name: the tune hook
     applies these to every freshly translated configuration. Guarded by
     [lock]. *)
  overrides : (string, Placement.t) Hashtbl.t;
  mutable run_tick : int;  (* inject-free runs seen; drives profiled Nths *)
  refine_jobs : refine_job Queue.t;
  refine_pending : (string, unit) Hashtbl.t;  (* kernels queued or running *)
  refine_cv : Condition.t;
  mutable refine_stop : bool;
  mutable refiner : Thread.t option;
  mutable on_window : Stats.snapshot -> unit;
}

let config t = t.cfg

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* All counter mutation happens under [t.lock]: increments come from both
   sys-threads (dispatchers) and pool domains (workers), and the registry's
   plain mutable fields are not atomic across domains. *)

let make_counters reg =
  let g = Stats.group reg "service" in
  let outcomes = Stats.subgroup g "outcomes" in
  let execg = Stats.subgroup g "exec" in
  let brg = Stats.subgroup g "breaker" in
  let telg = Stats.group reg "telemetry" in
  {
    admitted = Stats.counter g "admitted";
    shed = Stats.counter g "shed" ~desc:"rejected before queueing";
    ok = Stats.counter outcomes "ok";
    bad_request = Stats.counter outcomes "bad_request";
    deadline_exceeded = Stats.counter outcomes "deadline_exceeded";
    overloaded = Stats.counter outcomes "overloaded";
    fabric_quarantined = Stats.counter outcomes "fabric_quarantined";
    internal = Stats.counter outcomes "internal";
    exec_fabric = Stats.counter execg "fabric";
    exec_cpu_fallback = Stats.counter execg "cpu_fallback";
    exec_rerouted = Stats.counter execg "rerouted";
    exec_retries = Stats.counter execg "retries";
    exec_retry_successes = Stats.counter execg "retry_successes";
    exec_abandoned = Stats.counter execg "abandoned"
        ~desc:"worker tasks whose request's deadline fired before they started";
    backoff_ms = Stats.histogram execg "backoff_ms";
    br_trips = Stats.counter brg "trips";
    br_reopens = Stats.counter brg "reopens";
    br_recloses = Stats.counter brg "recloses" ~desc:"half-open probes that reclosed a shard";
    br_probes = Stats.counter brg "half_open_probes";
    br_faults = Stats.counter brg "faults_recorded";
    tel_profile_windows =
      Stats.counter telg "profile_windows"
        ~desc:"profiled runs that captured a measured window";
    tel_oracle_refreshes =
      Stats.counter telg "oracle_refreshes"
        ~desc:"measured snapshots handed to the background refiner";
    tel_refine_attempts = Stats.counter telg "refine_attempts";
    tel_refine_accepts =
      Stats.counter telg "refine_accepts"
        ~desc:"engine- and controller-confirmed placements installed";
    tel_refine_rejects = Stats.counter telg "refine_rejects";
    tel_memo_swaps =
      Stats.counter telg "memo_swaps"
        ~desc:"warm-memo placements atomically replaced";
  }
  |> fun c -> (g, telg, c)

(* Probes read live service state, so they can only be registered once the
   record exists; the counters above have no such dependency. *)
let register_probes t g telg =
  Stats.int_probe telg "spans_emitted" (fun () ->
      Telemetry.spans_emitted t.telemetry);
  Stats.int_probe telg "overrides_installed" (fun () ->
      Hashtbl.length t.overrides);
  let queue = Stats.subgroup g "queue" in
  Stats.int_probe queue "depth" (fun () -> t.inflight);
  Stats.int_probe queue "peak_depth" (fun () -> t.peak);
  Stats.int_probe queue "capacity" (fun () -> t.cfg.queue_depth);
  let shardsg = Stats.subgroup g "shards" in
  Array.iter
    (fun s ->
      Stats.int_probe shardsg
        (Printf.sprintf "shard%d_state" s.sh_id)
        ~desc:"0 closed, 1 open, 2 half-open"
        (fun () ->
          match Breaker.state s.sh_breaker with
          | Breaker.Closed -> 0
          | Breaker.Open -> 1
          | Breaker.Half_open -> 2))
    t.shards;
  let memo = Stats.subgroup g "memo" in
  Stats.int_probe memo "translation_hits" (fun () ->
      let h, _, _ = Runner.translation_cache_stats () in
      h);
  Stats.int_probe memo "translation_misses" (fun () ->
      let _, m, _ = Runner.translation_cache_stats () in
      m)

let warm_translation_memo shard_grid =
  List.iter
    (fun k ->
      try
        ignore (Runner.dfg_of_kernel k);
        ignore (Runner.placement_of ~grid:shard_grid k)
      with Failure _ -> ())
    (Workloads.all ())

(* ------------------------------------------------------------------ *)
(* Profiling-window feedback: a profiled run's measured per-node snapshot
   feeds the cost model's latency oracles, a background refine pass
   searches for a faster placement, and an accepted one is swapped into
   the warm translation memo and forced into every subsequent translation
   via the controller's tune hook. *)

(* A refined placement may only substitute for a translated configuration
   it is structurally compatible with: the controller maps its own
   (post-CSE) dfg while the refiner maps the raw hot-loop LDFG, so node
   counts can differ. Grid equality plus assignment arity is the guard —
   and installs are additionally gated on a full controller-path
   confirmation run below. *)
let compatible (cfg : Accel_config.t) (p : Placement.t) =
  cfg.Accel_config.placement.Placement.grid = p.Placement.grid
  && Array.length cfg.Accel_config.placement.Placement.assign
     = Array.length p.Placement.assign

let tune_hook t kernel cfg =
  match locked t (fun () -> Hashtbl.find_opt t.overrides kernel) with
  | Some p when compatible cfg p -> { cfg with Accel_config.placement = p }
  | _ -> cfg

(* Controller-path cycles for [k] with [placement] forced into every
   compatible translation — acceptance runs the same pipeline a live
   request does, so a placement that wins at the engine level but loses
   end to end (or corrupts outputs) is rejected. *)
let controller_confirm t (k : Kernel.t) ~grid placement =
  let options = Controller.default_options ~grid () in
  let options =
    {
      options with
      Controller.watchdog_window = t.cfg.watchdog_window;
      tune =
        (fun cfg ->
          if compatible cfg placement then
            { cfg with Accel_config.placement }
          else cfg);
    }
  in
  let mem = Main_memory.create () in
  let machine = Kernel.prepare k mem in
  let report = Controller.run ~options k.Kernel.program machine in
  let cycles = report.Controller.total_cycles in
  let verdict = k.Kernel.check mem in
  Hierarchy.release report.Controller.hier;
  Main_memory.release mem;
  match verdict with Ok () -> Some cycles | Error _ -> None

let refine_one t (j : refine_job) =
  let reject detail =
    locked t (fun () -> Stats.incr t.c.tel_refine_rejects);
    Telemetry.emit t.telemetry ~kernel:j.rj_kernel ~detail Telemetry.Refine
  in
  locked t (fun () -> Stats.incr t.c.tel_refine_attempts);
  match Workloads.find j.rj_kernel with
  | exception Not_found -> reject "unknown kernel"
  | k -> (
    let grid = t.shards.(0).sh_grid in
    let baseline =
      locked t (fun () -> Hashtbl.find_opt t.overrides j.rj_kernel)
    in
    match
      Refine.run_measured ~seed:t.cfg.seed ~grid ?baseline
        ~measured:j.rj_measured k
    with
    | Error e -> reject ("refine failed: " ^ e)
    | Ok r ->
      if r.Refine.refined_cycles >= r.Refine.baseline_cycles then
        reject "no engine-confirmed gain"
      else (
        match controller_confirm t k ~grid r.Refine.placement with
        | None -> reject "controller confirmation failed"
        | Some cycles when cycles > j.rj_cycles ->
          reject
            (Printf.sprintf "controller regression (%d > %d cycles)" cycles
               j.rj_cycles)
        | Some cycles ->
          locked t (fun () ->
              Hashtbl.replace t.overrides j.rj_kernel r.Refine.placement;
              Stats.incr t.c.tel_refine_accepts;
              Stats.incr t.c.tel_memo_swaps);
          Runner.swap_placement ~grid k r.Refine.placement;
          Telemetry.note_refine_accept t.telemetry ~kernel:j.rj_kernel;
          Telemetry.emit t.telemetry ~kernel:j.rj_kernel
            ~detail:
              (Printf.sprintf "accept: %d -> %d controller cycles" j.rj_cycles
                 cycles)
            Telemetry.Refine))

let refiner_loop t =
  let rec next () =
    let job =
      locked t (fun () ->
          while Queue.is_empty t.refine_jobs && not t.refine_stop do
            Condition.wait t.refine_cv t.lock
          done;
          if Queue.is_empty t.refine_jobs then None
          else Some (Queue.pop t.refine_jobs))
    in
    match job with
    | None -> ()
    | Some j ->
      Fun.protect
        ~finally:(fun () ->
          locked t (fun () -> Hashtbl.remove t.refine_pending j.rj_kernel))
        (fun () ->
          try refine_one t j
          with e ->
            locked t (fun () -> Stats.incr t.c.tel_refine_rejects);
            Telemetry.emit t.telemetry ~kernel:j.rj_kernel
              ~detail:("refiner exception: " ^ Printexc.to_string e)
              Telemetry.Refine);
      next ()
  in
  next ()

(* At most one queued job per kernel, and a short queue overall: windows
   arrive far faster than refines complete, and a newer window for the
   same kernel supersedes an unserved older one anyway. *)
let enqueue_refine t ~kernel ~measured ~cycles =
  locked t (fun () ->
      if
        (not t.refine_stop) && t.refiner <> None
        && (not (Hashtbl.mem t.refine_pending kernel))
        && Queue.length t.refine_jobs < 4
      then begin
        Hashtbl.add t.refine_pending kernel ();
        Queue.push
          { rj_kernel = kernel; rj_measured = measured; rj_cycles = cycles }
          t.refine_jobs;
        Stats.incr t.c.tel_oracle_refreshes;
        Condition.signal t.refine_cv;
        true
      end
      else false)

let create ?(config = default_config) () =
  if config.shards < 1 then invalid_arg "Service.create: shards must be >= 1";
  if config.shard_pes < 4 then
    invalid_arg "Service.create: shard_pes must be >= 4";
  if config.queue_depth < 1 then
    invalid_arg "Service.create: queue_depth must be >= 1";
  if config.max_retries < 0 then
    invalid_arg "Service.create: max_retries must be >= 0";
  (match Breaker.validate_config config.breaker with
  | Ok () -> ()
  | Error e -> invalid_arg ("Service.create: breaker " ^ e));
  let grid = Grid.of_pe_count config.shard_pes in
  let shards =
    Array.init config.shards (fun i ->
        { sh_id = i; sh_grid = grid; sh_breaker = Breaker.create config.breaker })
  in
  (match config.profile_window with
  | Some n when n < 1 ->
    invalid_arg "Service.create: profile_window must be >= 1"
  | _ -> ());
  let reg = Stats.registry () in
  let g, telg, c = make_counters reg in
  let t =
    {
      cfg = config;
      pool = Pool.create ~jobs:(max 1 config.jobs) ();
      shards;
      lock = Mutex.create ();
      settled = Condition.create ();
      inflight = 0;
      peak = 0;
      is_draining = false;
      shut = false;
      rr = 0;
      ticket = 0;
      reg;
      c;
      telemetry = Telemetry.create ();
      overrides = Hashtbl.create 8;
      run_tick = 0;
      refine_jobs = Queue.create ();
      refine_pending = Hashtbl.create 8;
      refine_cv = Condition.create ();
      refine_stop = false;
      refiner = None;
      on_window = (fun _ -> ());
    }
  in
  register_probes t g telg;
  if config.warm then warm_translation_memo grid;
  if config.profile_window <> None then
    t.refiner <- Some (Thread.create refiner_loop t);
  t

(* ------------------------------------------------------------------ *)
(* Execution of one attempt.                                           *)

let sum_regions f (report : Controller.report) =
  List.fold_left (fun acc r -> acc + f r) 0 report.Controller.regions

(* Full controller pipeline on one shard. Returns the response body (with
   latency left at 0), the quarantine count that drives the breaker, the
   output validation verdict, and — when [profiled] — the last clean
   window's measured per-node snapshot for the refiner's oracles.
   Profiling is pure observation, so a profiled run's cycles, memory and
   registers are bit-identical to an unprofiled one. *)
let fabric_exec t (k : Kernel.t) shard inject ~rerouted ~retries ~profiled =
  let options =
    Controller.default_options ~grid:shard.sh_grid ?inject ~profile:profiled ()
  in
  let options =
    {
      options with
      Controller.watchdog_window = t.cfg.watchdog_window;
      tune = tune_hook t k.Kernel.name;
    }
  in
  let mem = Main_memory.create () in
  let machine = Kernel.prepare k mem in
  let report = Controller.run ~options k.Kernel.program machine in
  let quarantines = sum_regions (fun r -> r.Controller.quarantines) report in
  let body =
    {
      Proto.kernel = k.Kernel.name;
      cycles = report.Controller.total_cycles;
      offloads = report.Controller.offloads;
      mem_checksum = Main_memory.checksum mem;
      shard = shard.sh_id;
      site = Proto.Fabric;
      rerouted;
      retries;
      quarantines;
      faults_detected =
        sum_regions (fun r -> r.Controller.faults_detected) report;
      latency_ms = 0.0;
    }
  in
  let verdict = k.Kernel.check mem in
  let measured =
    if profiled then
      List.find_map (fun r -> r.Controller.measured) report.Controller.regions
    else None
  in
  Hierarchy.release report.Controller.hier;
  Main_memory.release mem;
  (body, quarantines, verdict, measured)

let cpu_exec (k : Kernel.t) ~rerouted ~retries =
  let mem = Main_memory.create () in
  let machine = Kernel.prepare k mem in
  let r = Cpu_run.run k.Kernel.program machine in
  let body =
    {
      Proto.kernel = k.Kernel.name;
      cycles = r.Cpu_run.summary.Ooo_model.cycles;
      offloads = 0;
      mem_checksum = Main_memory.checksum mem;
      shard = -1;
      site = Proto.Cpu;
      rerouted;
      retries;
      quarantines = 0;
      faults_detected = 0;
      latency_ms = 0.0;
    }
  in
  let verdict = k.Kernel.check mem in
  Main_memory.release mem;
  (body, verdict)

let err kind message = Proto.Err { Proto.kind; message }

(* Route under the lock: advance every open breaker's cooldown, then scan
   round-robin for a shard whose breaker admits traffic. *)
let route t =
  locked t (fun () ->
      Array.iter (fun s -> Breaker.tick s.sh_breaker) t.shards;
      let n = Array.length t.shards in
      let start = t.rr in
      t.rr <- (t.rr + 1) mod n;
      let rec scan i skipped =
        if i = n then None
        else
          let s = t.shards.((start + i) mod n) in
          match Breaker.acquire s.sh_breaker with
          | Some grant ->
            if grant = `Probe then Stats.incr t.c.br_probes;
            Some (s, grant, skipped > 0)
          | None -> scan (i + 1) (skipped + 1)
      in
      scan 0 0)

let record_breaker t shard ~probe ~ok =
  let transition =
    locked t (fun () ->
        if not ok then Stats.incr t.c.br_faults;
        let tr = Breaker.record shard.sh_breaker ~probe ~ok in
        (match tr with
        | Breaker.No_change -> ()
        | Breaker.Tripped -> Stats.incr t.c.br_trips
        | Breaker.Reclosed -> Stats.incr t.c.br_recloses
        | Breaker.Reopened -> Stats.incr t.c.br_reopens);
        tr)
  in
  match transition with
  | Breaker.No_change -> ()
  | tr ->
    let detail =
      match tr with
      | Breaker.Tripped -> "trip"
      | Breaker.Reclosed -> "reclose"
      | Breaker.Reopened -> "reopen"
      | Breaker.No_change -> ""
    in
    Telemetry.emit t.telemetry ~shard:shard.sh_id ~detail Telemetry.Breaker

(* The worker-side attempt ladder. [inject] is armed on the first attempt
   only: the schedule models an environmental strike during this request,
   so a retry runs clean on (preferably) a different shard. A [profiled]
   attempt that completes a clean fabric window hands its measured
   snapshot to the background refiner and fires the [on_window] hook. *)
let attempts t (k : Kernel.t) inject ~req ~profiled ~allow_fallback ~cancelled
    ~backoff =
  let kernel = k.Kernel.name in
  let rec go attempt inject any_reroute =
    if Atomic.get cancelled then begin
      locked t (fun () -> Stats.incr t.c.exec_abandoned);
      err Proto.Deadline_exceeded "deadline elapsed before execution started"
    end
    else
      match route t with
      | None ->
        if allow_fallback then begin
          match cpu_exec k ~rerouted:any_reroute ~retries:attempt with
          | body, Ok () ->
            locked t (fun () -> Stats.incr t.c.exec_cpu_fallback);
            Telemetry.emit t.telemetry ~req ~kernel ~detail:"cpu-fallback"
              Telemetry.Execute;
            Proto.Ok_run body
          | _, Error msg ->
            err Proto.Internal ("cpu fallback output validation failed: " ^ msg)
          | exception e -> err Proto.Internal (Printexc.to_string e)
        end
        else
          err Proto.Fabric_quarantined
            (Printf.sprintf
               "all %d fabric shard(s) quarantined and fallback disallowed"
               (Array.length t.shards))
      | Some (shard, grant, skipped) ->
        let probe = grant = `Probe in
        let rerouted = any_reroute || skipped in
        Telemetry.emit t.telemetry ~req ~kernel ~shard:shard.sh_id
          ~detail:(if probe then "probe" else "")
          Telemetry.Translate;
        (match
           fabric_exec t k shard inject ~rerouted ~retries:attempt ~profiled
         with
        | body, quarantines, checked, measured -> (
          match checked with
          | Error msg ->
            record_breaker t shard ~probe ~ok:false;
            err Proto.Internal ("output validation failed: " ^ msg)
          | Ok () ->
            if quarantines = 0 then begin
              record_breaker t shard ~probe ~ok:true;
              locked t (fun () ->
                  Stats.incr t.c.exec_fabric;
                  if rerouted then Stats.incr t.c.exec_rerouted;
                  if attempt > 0 then Stats.incr t.c.exec_retry_successes);
              Telemetry.emit t.telemetry ~req ~kernel ~shard:shard.sh_id
                ~detail:(Printf.sprintf "%d cycles" body.Proto.cycles)
                Telemetry.Execute;
              (match measured with
              | Some snap ->
                locked t (fun () -> Stats.incr t.c.tel_profile_windows);
                Telemetry.note_profile_window t.telemetry ~kernel;
                Telemetry.emit t.telemetry ~req ~kernel ~shard:shard.sh_id
                  Telemetry.Profile_window;
                if
                  enqueue_refine t ~kernel ~measured:snap
                    ~cycles:body.Proto.cycles
                then
                  Telemetry.emit t.telemetry ~req ~kernel
                    Telemetry.Oracle_refresh;
                let cb = locked t (fun () -> t.on_window) in
                cb (locked t (fun () -> Stats.snapshot t.reg))
              | None -> ());
              Proto.Ok_run body
            end
            else begin
              (* Architecturally correct (the in-run recovery ladder fell
                 back to the CPU), but the shard faulted: trip its health
                 tracker and, budget permitting, retry for a clean fabric
                 result. *)
              record_breaker t shard ~probe ~ok:false;
              if attempt < t.cfg.max_retries && not (Atomic.get cancelled)
              then begin
                let delay_ms = Backoff.next_ms backoff in
                locked t (fun () ->
                    Stats.incr t.c.exec_retries;
                    Stats.observe t.c.backoff_ms delay_ms);
                Telemetry.emit t.telemetry ~req ~kernel ~shard:shard.sh_id
                  ~detail:(Printf.sprintf "backoff %.2fms" delay_ms)
                  Telemetry.Retry;
                Unix.sleepf (delay_ms /. 1000.0);
                go (attempt + 1) None true
              end
              else begin
                locked t (fun () ->
                    Stats.incr t.c.exec_fabric;
                    if rerouted then Stats.incr t.c.exec_rerouted);
                Telemetry.emit t.telemetry ~req ~kernel ~shard:shard.sh_id
                  ~detail:"degraded" Telemetry.Execute;
                Proto.Ok_run body
              end
            end)
        | exception e ->
          record_breaker t shard ~probe ~ok:false;
          err Proto.Internal (Printexc.to_string e))
  in
  go 0 inject false

(* ------------------------------------------------------------------ *)
(* Admission, deadline and taxonomy accounting.                        *)

let validate (req : Proto.run_request) =
  match Workloads.find req.kernel with
  | exception Not_found ->
    Error (Printf.sprintf "unknown kernel %S" req.kernel)
  | k -> (
    match req.deadline_ms with
    | Some d when not (d > 0.0) -> Error "deadline_ms must be positive"
    | _ -> (
      match req.inject with
      | None -> Ok (k, None)
      | Some s -> (
        match Fault.spec_of_string ~seed:req.fault_seed s with
        | Ok spec -> Ok (k, Some spec)
        | Error e -> Error ("bad inject spec: " ^ e))))

let tally t body =
  locked t (fun () ->
      match body with
      | Proto.Ok_run _ -> Stats.incr t.c.ok
      | Proto.Err e -> (
        match e.Proto.kind with
        | Proto.Bad_request -> Stats.incr t.c.bad_request
        | Proto.Deadline_exceeded -> Stats.incr t.c.deadline_exceeded
        | Proto.Overloaded -> Stats.incr t.c.overloaded
        | Proto.Fabric_quarantined -> Stats.incr t.c.fabric_quarantined
        | Proto.Internal -> Stats.incr t.c.internal)
      | Proto.Stats_dump _ | Proto.Pong | Proto.Frame _ | Proto.Span _
      | Proto.End_stream ->
        ())

let outcome_of = function
  | Proto.Ok_run _ -> "ok"
  | Proto.Err e -> Proto.error_kind_to_string e.Proto.kind
  | Proto.Stats_dump _ | Proto.Pong | Proto.Frame _ | Proto.Span _
  | Proto.End_stream ->
    ""

let bad_request t msg =
  let body = err Proto.Bad_request msg in
  tally t body;
  Telemetry.emit t.telemetry ~outcome:"bad_request" ~detail:msg
    Telemetry.Resolve;
  body

let execute t (req : Proto.run_request) =
  let t0 = Unix.gettimeofday () in
  match validate req with
  | Error msg -> bad_request t msg
  | Ok (k, inject) ->
    let admitted =
      locked t (fun () ->
          if t.is_draining || t.shut then begin
            Stats.incr t.c.shed;
            Error (err Proto.Overloaded "service is draining")
          end
          else if t.inflight >= t.cfg.queue_depth then begin
            Stats.incr t.c.shed;
            Error
              (err Proto.Overloaded
                 (Printf.sprintf "queue full (depth %d)" t.cfg.queue_depth))
          end
          else begin
            t.inflight <- t.inflight + 1;
            if t.inflight > t.peak then t.peak <- t.inflight;
            Stats.incr t.c.admitted;
            let ticket = t.ticket in
            t.ticket <- ticket + 1;
            Ok ticket
          end)
    in
    let body =
      match admitted with
      | Error body -> body
      | Ok ticket ->
        Telemetry.emit t.telemetry ~req:req.Proto.id ~kernel:req.Proto.kernel
          ~detail:(Printf.sprintf "ticket %d" ticket)
          Telemetry.Admit;
        (* Every [profile_window]-th clean-environment run carries the
           attribution collector. Injected runs are skipped: a faulted
           window's measurements would poison the oracles. *)
        let profiled =
          match t.cfg.profile_window with
          | Some n when inject = None ->
            locked t (fun () ->
                let tick = t.run_tick in
                t.run_tick <- tick + 1;
                tick mod n = 0)
          | _ -> false
        in
        let cancelled = Atomic.make false in
        let backoff =
          (* Independent jitter stream per admitted request, reproducible
             from (service seed, admission ordinal). *)
          Backoff.create ~base_ms:t.cfg.backoff_base_ms
            ~cap_ms:t.cfg.backoff_cap_ms
            ~seed:(t.cfg.seed + (ticket * 0x9E3779B9))
            ()
        in
        let fut =
          Pool.submit t.pool (fun () ->
              Fun.protect
                ~finally:(fun () ->
                  locked t (fun () ->
                      t.inflight <- t.inflight - 1;
                      Condition.broadcast t.settled))
                (fun () ->
                  Telemetry.emit t.telemetry ~req:req.Proto.id
                    ~kernel:k.Kernel.name Telemetry.Queue;
                  attempts t k inject ~req:req.Proto.id ~profiled
                    ~allow_fallback:req.Proto.allow_fallback ~cancelled
                    ~backoff))
        in
        let deadline_ms =
          match req.Proto.deadline_ms with
          | Some d -> Some d
          | None -> t.cfg.default_deadline_ms
        in
        (match deadline_ms with
        | None -> Pool.await fut
        | Some ms -> (
          match Pool.await_timeout fut (ms /. 1000.0) with
          | Some body -> body
          | None ->
            Atomic.set cancelled true;
            err Proto.Deadline_exceeded
              (Printf.sprintf "deadline of %gms exceeded" ms)))
    in
    tally t body;
    let latency_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    let outcome = outcome_of body in
    Telemetry.observe_latency t.telemetry ~outcome latency_ms;
    (match body with
    | Proto.Ok_run b ->
      Telemetry.observe_cycles t.telemetry ~kernel:b.Proto.kernel
        b.Proto.cycles
    | _ -> ());
    Telemetry.emit t.telemetry ~req:req.Proto.id ~kernel:req.Proto.kernel
      ~outcome Telemetry.Resolve;
    (match body with
    | Proto.Ok_run b -> Proto.Ok_run { b with Proto.latency_ms }
    | other -> other)

(* ------------------------------------------------------------------ *)

let stats t = locked t (fun () -> Stats.snapshot t.reg)

let draining t = locked t (fun () -> t.is_draining)

let begin_drain t = locked t (fun () -> t.is_draining <- true)

let drain t =
  locked t (fun () ->
      t.is_draining <- true;
      while t.inflight > 0 do
        Condition.wait t.settled t.lock
      done;
      Stats.snapshot t.reg)

let telemetry t = t.telemetry

let set_on_window t f = locked t (fun () -> t.on_window <- f)

let refine_backlog t =
  locked t (fun () -> Queue.length t.refine_jobs + Hashtbl.length t.refine_pending)

(* Stop accepting jobs and join the refiner, letting an in-flight refine
   finish: its acceptance still lands in the final stats snapshot. *)
let stop_refiner t =
  let th =
    locked t (fun () ->
        t.refine_stop <- true;
        Condition.broadcast t.refine_cv;
        let th = t.refiner in
        t.refiner <- None;
        th)
  in
  Option.iter Thread.join th

let shutdown t =
  ignore (drain t);
  stop_refiner t;
  let was_shut = locked t (fun () ->
      let w = t.shut in
      t.shut <- true;
      w)
  in
  if not was_shut then Pool.shutdown t.pool
