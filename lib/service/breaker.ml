type config = { trip_threshold : int; cooldown : int; max_cooldown : int }

let default_config = { trip_threshold = 3; cooldown = 8; max_cooldown = 64 }

let validate_config c =
  if c.trip_threshold < 1 then Error "trip_threshold must be >= 1"
  else if c.cooldown < 1 then Error "cooldown must be >= 1"
  else if c.max_cooldown < c.cooldown then
    Error "max_cooldown must be >= cooldown"
  else Ok ()

type state = Closed | Open | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half_open"

type t = {
  cfg : config;
  mutable st : state;
  mutable failures : int;       (* consecutive faults while Closed *)
  mutable remaining : int;      (* Open: ticks until Half_open *)
  mutable next_cooldown : int;  (* doubled on every reopen, capped *)
  mutable probing : bool;       (* Half_open: probe slot claimed *)
}

let create cfg =
  (match validate_config cfg with
  | Ok () -> ()
  | Error e -> invalid_arg ("Breaker.create: " ^ e));
  {
    cfg;
    st = Closed;
    failures = 0;
    remaining = 0;
    next_cooldown = cfg.cooldown;
    probing = false;
  }

let state t = t.st

type transition = No_change | Tripped | Reclosed | Reopened

let acquire t =
  match t.st with
  | Closed -> Some `Route
  | Open -> None
  | Half_open ->
    if t.probing then None
    else begin
      t.probing <- true;
      Some `Probe
    end

let tick t =
  match t.st with
  | Open ->
    t.remaining <- t.remaining - 1;
    if t.remaining <= 0 then begin
      t.st <- Half_open;
      t.probing <- false
    end
  | Closed | Half_open -> ()

let trip t =
  t.st <- Open;
  t.failures <- 0;
  t.probing <- false;
  t.remaining <- t.next_cooldown

let record t ~probe ~ok =
  match (t.st, probe) with
  | Closed, false ->
    if ok then begin
      t.failures <- 0;
      No_change
    end
    else begin
      t.failures <- t.failures + 1;
      if t.failures >= t.cfg.trip_threshold then begin
        trip t;
        Tripped
      end
      else No_change
    end
  | Half_open, true ->
    t.probing <- false;
    if ok then begin
      t.st <- Closed;
      t.failures <- 0;
      t.next_cooldown <- t.cfg.cooldown;
      Reclosed
    end
    else begin
      t.next_cooldown <- min (2 * t.next_cooldown) t.cfg.max_cooldown;
      trip t;
      Reopened
    end
  (* Stale outcomes — the breaker moved on while this run was in flight
     (another request tripped it, or the probe window closed). *)
  | (Open | Half_open), false | (Closed | Open), true -> No_change
