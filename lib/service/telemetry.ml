type phase =
  | Admit
  | Queue
  | Translate
  | Execute
  | Retry
  | Breaker
  | Resolve
  | Profile_window
  | Oracle_refresh
  | Refine

let all_phases =
  [
    Admit; Queue; Translate; Execute; Retry; Breaker; Resolve; Profile_window;
    Oracle_refresh; Refine;
  ]

let phase_to_string = function
  | Admit -> "admit"
  | Queue -> "queue"
  | Translate -> "translate"
  | Execute -> "execute"
  | Retry -> "retry"
  | Breaker -> "breaker"
  | Resolve -> "resolve"
  | Profile_window -> "profile_window"
  | Oracle_refresh -> "oracle_refresh"
  | Refine -> "refine"

let phase_of_string s =
  match List.find_opt (fun p -> phase_to_string p = s) all_phases with
  | Some p -> Ok p
  | None -> Error (Printf.sprintf "unknown span phase %S" s)

type span = {
  sp_seq : int;
  sp_at_ms : float;
  sp_req : int;
  sp_kernel : string;
  sp_shard : int;
  sp_phase : phase;
  sp_outcome : string;
  sp_detail : string;
}

let span_to_json sp =
  Json.Assoc
    [
      ("seq", Json.Int sp.sp_seq);
      ("at_ms", Json.Float sp.sp_at_ms);
      ("req", Json.Int sp.sp_req);
      ("kernel", Json.String sp.sp_kernel);
      ("shard", Json.Int sp.sp_shard);
      ("phase", Json.String (phase_to_string sp.sp_phase));
      ("outcome", Json.String sp.sp_outcome);
      ("detail", Json.String sp.sp_detail);
    ]

let ( let* ) = Result.bind

let req_int name j =
  match Option.bind (Json.member name j) Json.to_int with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "span: missing integer field %S" name)

let req_float name j =
  match Option.bind (Json.member name j) Json.to_float with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "span: missing numeric field %S" name)

let opt_int ~default name j =
  Option.value ~default (Option.bind (Json.member name j) Json.to_int)

let opt_string ~default name j =
  Option.value ~default (Option.bind (Json.member name j) Json.to_string_opt)

let span_of_json j =
  let* sp_seq = req_int "seq" j in
  let* sp_at_ms = req_float "at_ms" j in
  let* sp_phase =
    match Option.bind (Json.member "phase" j) Json.to_string_opt with
    | Some s -> phase_of_string s
    | None -> Error "span: missing field \"phase\""
  in
  Ok
    {
      sp_seq;
      sp_at_ms;
      sp_req = opt_int ~default:(-1) "req" j;
      sp_kernel = opt_string ~default:"" "kernel" j;
      sp_shard = opt_int ~default:(-1) "shard" j;
      sp_phase;
      sp_outcome = opt_string ~default:"" "outcome" j;
      sp_detail = opt_string ~default:"" "detail" j;
    }

let to_trace_span sp =
  let args =
    [ ("seq", Json.Int sp.sp_seq) ]
    @ (if sp.sp_req >= 0 then [ ("req", Json.Int sp.sp_req) ] else [])
    @ (if sp.sp_kernel <> "" then [ ("kernel", Json.String sp.sp_kernel) ]
       else [])
    @ (if sp.sp_outcome <> "" then
         [ ("outcome", Json.String sp.sp_outcome) ]
       else [])
    @ if sp.sp_detail <> "" then [ ("detail", Json.String sp.sp_detail) ] else []
  in
  Trace.instant ~tid:(sp.sp_shard + 1) ~args ~cat:"service"
    ~ts:(int_of_float sp.sp_at_ms)
    (phase_to_string sp.sp_phase)

(* ---------------- the hub ---------------- *)

type t = {
  lock : Mutex.t;
  clock : unit -> float;
  ring : span option array;
  mutable next_seq : int;
  n_windows : int;
  window_ms : float;
  mutable last_advance : float;
  latency : (string, Sketch.t) Hashtbl.t;  (* by outcome *)
  cycles : (string, Sketch.t) Hashtbl.t;   (* by kernel *)
  profile_windows : (string, int ref) Hashtbl.t;
  refine_accepts : (string, int ref) Hashtbl.t;
}

let create ?(ring = 4096) ?(windows = 8) ?(window_ms = 250.0) ?clock () =
  if ring < 1 then invalid_arg "Telemetry.create: ring must be >= 1";
  if windows < 1 then invalid_arg "Telemetry.create: windows must be >= 1";
  if not (window_ms > 0.0) then
    invalid_arg "Telemetry.create: window_ms must be positive";
  let clock =
    match clock with
    | Some c -> c
    | None ->
      let t0 = Unix.gettimeofday () in
      fun () -> (Unix.gettimeofday () -. t0) *. 1000.0
  in
  {
    lock = Mutex.create ();
    clock;
    ring = Array.make ring None;
    next_seq = 0;
    n_windows = windows;
    window_ms;
    last_advance = clock ();
    latency = Hashtbl.create 8;
    cycles = Hashtbl.create 8;
    profile_windows = Hashtbl.create 8;
    refine_accepts = Hashtbl.create 8;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Rotate the sketch rings to catch up with the clock. Advancing past the
   window depth clears everything, so catch-up work is bounded regardless
   of how long the hub sat idle. Lock held. *)
let tick t now =
  if now -. t.last_advance >= t.window_ms then begin
    let steps = int_of_float ((now -. t.last_advance) /. t.window_ms) in
    let eff = min steps t.n_windows in
    let adv _ sk = for _ = 1 to eff do Sketch.advance sk done in
    Hashtbl.iter adv t.latency;
    Hashtbl.iter adv t.cycles;
    t.last_advance <- t.last_advance +. (float_of_int steps *. t.window_ms)
  end

let sketch_for t table key =
  match Hashtbl.find_opt table key with
  | Some sk -> sk
  | None ->
    let sk = Sketch.create ~windows:t.n_windows () in
    Hashtbl.add table key sk;
    sk

let count_for table key =
  match Hashtbl.find_opt table key with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add table key r;
    r

let emit t ?(req = -1) ?(kernel = "") ?(shard = -1) ?(outcome = "")
    ?(detail = "") phase =
  locked t (fun () ->
      let now = t.clock () in
      tick t now;
      let sp =
        {
          sp_seq = t.next_seq;
          sp_at_ms = now;
          sp_req = req;
          sp_kernel = kernel;
          sp_shard = shard;
          sp_phase = phase;
          sp_outcome = outcome;
          sp_detail = detail;
        }
      in
      t.ring.(t.next_seq mod Array.length t.ring) <- Some sp;
      t.next_seq <- t.next_seq + 1)

let observe_latency t ~outcome ms =
  locked t (fun () ->
      tick t (t.clock ());
      Sketch.observe (sketch_for t t.latency outcome) ms)

let observe_cycles t ~kernel cycles =
  locked t (fun () ->
      tick t (t.clock ());
      Sketch.observe (sketch_for t t.cycles kernel) (float_of_int cycles))

let note_profile_window t ~kernel =
  locked t (fun () -> incr (count_for t.profile_windows kernel))

let note_refine_accept t ~kernel =
  locked t (fun () -> incr (count_for t.refine_accepts kernel))

let spans_emitted t = locked t (fun () -> t.next_seq)

(* ---------------- trace subscriptions ---------------- *)

type cursor = { mutable cur : int; mutable dropped : int }

let subscribe t = locked t (fun () -> { cur = t.next_seq; dropped = 0 })

let poll t cursor ~max:limit =
  locked t (fun () ->
      let cap = Array.length t.ring in
      let oldest = max 0 (t.next_seq - cap) in
      if cursor.cur < oldest then begin
        cursor.dropped <- cursor.dropped + (oldest - cursor.cur);
        cursor.cur <- oldest
      end;
      let n = min limit (t.next_seq - cursor.cur) in
      let out = ref [] in
      for i = cursor.cur + n - 1 downto cursor.cur do
        match t.ring.(i mod cap) with
        | Some sp -> out := sp :: !out
        | None -> ()
      done;
      cursor.cur <- cursor.cur + n;
      !out)

let cursor_dropped cursor = cursor.dropped

(* ---------------- watch frames ---------------- *)

type quantiles = {
  q_count : int;
  q_p50 : float;
  q_p90 : float;
  q_p99 : float;
  q_max : float;
}

let empty_quantiles = { q_count = 0; q_p50 = 0.; q_p90 = 0.; q_p99 = 0.; q_max = 0. }

let quantiles_of sk =
  {
    q_count = Sketch.window_count sk;
    q_p50 = Sketch.quantile sk 0.5;
    q_p90 = Sketch.quantile sk 0.9;
    q_p99 = Sketch.quantile sk 0.99;
    q_max = Sketch.window_max sk;
  }

type outcome_row = { o_total : int; o_delta : int; o_window : quantiles }

type kernel_row = {
  k_window : quantiles;
  k_profile_windows : int;
  k_refine_accepts : int;
}

type frame = {
  f_seq : int;
  f_at_ms : float;
  f_dropped : int;
  f_outcomes : (string * outcome_row) list;
  f_kernels : (string * kernel_row) list;
  f_deltas : (string * int) list;
  f_totals : (string * int) list;
}

type watcher = {
  mutable w_seq : int;
  mutable w_base : (string * int) list;
  mutable w_dropped : int;
}

let watcher _t = { w_seq = 0; w_base = []; w_dropped = 0 }

let note_missed w n = w.w_dropped <- w.w_dropped + n

let watched_prefix path =
  String.starts_with ~prefix:"service." path
  || String.starts_with ~prefix:"telemetry." path

let int_totals snapshot =
  List.filter_map
    (fun (path, e) ->
      match e with
      | Stats.Value (Stats.VInt n) when watched_prefix path -> Some (path, n)
      | _ -> None)
    (Stats.to_assoc snapshot)

let outcome_names =
  "ok" :: List.map Proto.error_kind_to_string Proto.all_error_kinds

let next_frame t w snapshot =
  locked t (fun () ->
      let now = t.clock () in
      tick t now;
      let totals = int_totals snapshot in
      let base p = Option.value ~default:0 (List.assoc_opt p w.w_base) in
      let deltas =
        List.filter_map
          (fun (p, n) -> if n <> base p then Some (p, n - base p) else None)
          totals
      in
      let f_outcomes =
        List.map
          (fun name ->
            let path = "service.outcomes." ^ name in
            let total = Option.value ~default:0 (List.assoc_opt path totals) in
            let window =
              match Hashtbl.find_opt t.latency name with
              | Some sk -> quantiles_of sk
              | None -> empty_quantiles
            in
            (name, { o_total = total; o_delta = total - base path; o_window = window }))
          outcome_names
      in
      let kernel_names =
        let names = Hashtbl.create 8 in
        Hashtbl.iter (fun k _ -> Hashtbl.replace names k ()) t.cycles;
        Hashtbl.iter (fun k _ -> Hashtbl.replace names k ()) t.profile_windows;
        Hashtbl.iter (fun k _ -> Hashtbl.replace names k ()) t.refine_accepts;
        List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) names [])
      in
      let f_kernels =
        List.map
          (fun k ->
            let window =
              match Hashtbl.find_opt t.cycles k with
              | Some sk -> quantiles_of sk
              | None -> empty_quantiles
            in
            let count tbl =
              match Hashtbl.find_opt tbl k with Some r -> !r | None -> 0
            in
            ( k,
              {
                k_window = window;
                k_profile_windows = count t.profile_windows;
                k_refine_accepts = count t.refine_accepts;
              } ))
          kernel_names
      in
      let frame =
        {
          f_seq = w.w_seq;
          f_at_ms = now;
          f_dropped = w.w_dropped;
          f_outcomes;
          f_kernels;
          f_deltas = deltas;
          f_totals = totals;
        }
      in
      w.w_seq <- w.w_seq + 1;
      w.w_base <- totals;
      frame)

(* ---------------- frame codec ---------------- *)

let schema = "mesa-telemetry-v1"

let quantiles_to_json q =
  Json.Assoc
    [
      ("count", Json.Int q.q_count);
      ("p50", Json.Float q.q_p50);
      ("p90", Json.Float q.q_p90);
      ("p99", Json.Float q.q_p99);
      ("max", Json.Float q.q_max);
    ]

let quantiles_of_json j =
  let* q_count = req_int "count" j in
  let* q_p50 = req_float "p50" j in
  let* q_p90 = req_float "p90" j in
  let* q_p99 = req_float "p99" j in
  let* q_max = req_float "max" j in
  Ok { q_count; q_p50; q_p90; q_p99; q_max }

let frame_to_json f =
  Json.Assoc
    [
      ("schema", Json.String schema);
      ("seq", Json.Int f.f_seq);
      ("at_ms", Json.Float f.f_at_ms);
      ("dropped", Json.Int f.f_dropped);
      ( "outcomes",
        Json.Assoc
          (List.map
             (fun (name, r) ->
               ( name,
                 Json.Assoc
                   [
                     ("total", Json.Int r.o_total);
                     ("delta", Json.Int r.o_delta);
                     ("latency_ms", quantiles_to_json r.o_window);
                   ] ))
             f.f_outcomes) );
      ( "kernels",
        Json.Assoc
          (List.map
             (fun (name, r) ->
               ( name,
                 Json.Assoc
                   [
                     ("cycles", quantiles_to_json r.k_window);
                     ("profile_windows", Json.Int r.k_profile_windows);
                     ("refine_accepts", Json.Int r.k_refine_accepts);
                   ] ))
             f.f_kernels) );
      ( "deltas",
        Json.Assoc (List.map (fun (p, n) -> (p, Json.Int n)) f.f_deltas) );
      ( "totals",
        Json.Assoc (List.map (fun (p, n) -> (p, Json.Int n)) f.f_totals) );
    ]

let int_assoc name j =
  match Json.member name j with
  | None -> Error (Printf.sprintf "frame: missing field %S" name)
  | Some v -> (
    match Json.to_assoc v with
    | None -> Error (Printf.sprintf "frame: field %S is not an object" name)
    | Some l ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (p, v) :: rest -> (
          match Json.to_int v with
          | Some n -> go ((p, n) :: acc) rest
          | None ->
            Error (Printf.sprintf "frame: %s.%s is not an integer" name p))
      in
      go [] l)

let frame_of_json j =
  let* () =
    match Option.bind (Json.member "schema" j) Json.to_string_opt with
    | Some s when s = schema -> Ok ()
    | Some s -> Error (Printf.sprintf "frame: unknown schema %S" s)
    | None -> Error "frame: missing field \"schema\""
  in
  let* f_seq = req_int "seq" j in
  let* f_at_ms = req_float "at_ms" j in
  let* f_dropped = req_int "dropped" j in
  let* f_outcomes =
    match Option.bind (Json.member "outcomes" j) Json.to_assoc with
    | None -> Error "frame: missing object field \"outcomes\""
    | Some l ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (name, v) :: rest ->
          let* o_total = req_int "total" v in
          let* o_delta = req_int "delta" v in
          let* o_window =
            match Json.member "latency_ms" v with
            | Some q -> quantiles_of_json q
            | None -> Error "frame: outcome row missing \"latency_ms\""
          in
          go ((name, { o_total; o_delta; o_window }) :: acc) rest
      in
      go [] l
  in
  let* f_kernels =
    match Option.bind (Json.member "kernels" j) Json.to_assoc with
    | None -> Error "frame: missing object field \"kernels\""
    | Some l ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (name, v) :: rest ->
          let* k_window =
            match Json.member "cycles" v with
            | Some q -> quantiles_of_json q
            | None -> Error "frame: kernel row missing \"cycles\""
          in
          let* k_profile_windows = req_int "profile_windows" v in
          let* k_refine_accepts = req_int "refine_accepts" v in
          go ((name, { k_window; k_profile_windows; k_refine_accepts }) :: acc)
            rest
      in
      go [] l
  in
  let* f_deltas = int_assoc "deltas" j in
  let* f_totals = int_assoc "totals" j in
  Ok { f_seq; f_at_ms; f_dropped; f_outcomes; f_kernels; f_deltas; f_totals }
