(** Per-shard circuit breaker: PR 2's per-run quarantine lifted into a
    cross-request health tracker.

    State machine (the classic three states):

    - [Closed] — the shard takes traffic. Each faulted run (a fabric
      quarantine inside the controller) increments a consecutive-failure
      count; reaching [trip_threshold] trips the breaker [Open]. Any clean
      run resets the count.
    - [Open] — the shard takes no traffic; the router sends requests to
      healthy shards or CPU fallback instead. The cooldown is measured in
      {e admitted requests} ({!tick}), not wall-clock time, so breaker
      evolution is bit-reproducible at [--concurrency 1] regardless of
      machine speed. When it elapses the breaker moves to [Half_open].
    - [Half_open] — exactly one probe request may be routed to the shard
      ({!acquire} returns [`Probe] once). A clean probe recloses the
      breaker; a faulted probe reopens it with the cooldown doubled (capped
      at [max_cooldown]).

    The type is not thread-safe; the service serializes all routing and
    outcome recording under one lock. *)

type config = {
  trip_threshold : int;  (** consecutive faulted runs before tripping *)
  cooldown : int;        (** admitted requests an open breaker sits out *)
  max_cooldown : int;    (** cap for the doubling-on-reopen cooldown *)
}

val default_config : config
(** threshold 3, cooldown 8, max 64. *)

val validate_config : config -> (unit, string) result

type state = Closed | Open | Half_open

val state_name : state -> string

type t

val create : config -> t
(** Starts [Closed]. Raises [Invalid_argument] on an invalid config. *)

val state : t -> state

(** Result of recording a run outcome, for the service's stats. *)
type transition =
  | No_change
  | Tripped     (** Closed -> Open *)
  | Reclosed    (** Half_open -> Closed (a recovery) *)
  | Reopened    (** Half_open -> Open, cooldown doubled *)

val acquire : t -> [ `Route | `Probe ] option
(** Ask to route a request to this shard. [Some `Route] in [Closed];
    [Some `Probe] the first time in [Half_open] (subsequent calls return
    [None] until the probe's outcome is recorded); [None] in [Open]. *)

val tick : t -> unit
(** An admitted request was routed elsewhere: advance an [Open] breaker's
    cooldown, entering [Half_open] when it elapses. No-op otherwise. *)

val record : t -> probe:bool -> ok:bool -> transition
(** Record the outcome of a run previously granted by {!acquire}.
    [probe] must echo what {!acquire} returned. Outcomes that arrive after
    an intervening state change (another request tripped the breaker
    first) are ignored ([No_change]). *)
