(** Load generator for `mesad`: replay a seeded stream of mixed-kernel
    offload requests against a running daemon and measure how it degrades.

    The request stream is a pure function of [seed] — kernel choice,
    chaos fault schedules, fallback permission are all drawn per request
    index from splitmix — so two runs with the same config send the same
    requests. At [concurrency = 1] the daemon's routing and breaker
    evolution are also deterministic, and the per-request result
    {!result.digest} (FNV-1a over everything except latency) is
    bit-identical across runs — the service-level mirror of the fuzz
    campaign's digest discipline.

    Chaos mode ([chaos = true]) arms a fault schedule on a seeded
    fraction of requests: mid-service fabric faults that quarantine
    shards, trip circuit breakers and exercise reroute / retry /
    half-open recovery. The measured outcome histogram plus the daemon's
    own [service] stats group (fetched at the end of the run) let a CI
    gate assert that faults degrade throughput gracefully — zero
    [internal] errors, every request resolving to a taxonomy outcome —
    rather than failing requests. *)

type config = {
  socket : string;
  requests : int;
  concurrency : int;        (** client lanes; one connection each *)
  seed : int;
  kernels : string list;    (** mix drawn uniformly per request *)
  chaos : bool;
  chaos_rate : float;       (** fraction of requests carrying a fault *)
  injects : string list;    (** fault schedules drawn from in chaos mode *)
  deadline_ms : float option;
  no_fallback_rate : float; (** fraction with [allow_fallback = false] *)
}

val default_config : config
(** socket "/tmp/mesad.sock", 200 requests, concurrency 8, seed 1,
    kernels nn/kmeans/bfs, chaos off at rate 0.25, injects drawn from
    transient/permanent/link/ports schedules plus a dense transient storm
    that forces a mid-run quarantine, no deadline, no-fallback rate 0.1
    (chaos mode only). *)

val request_at : config -> int -> Proto.run_request
(** The deterministic request for stream index [i] (its [id] is [i]). *)

(** Per-request record kept by the lanes, for the digest and histogram. *)
type probe_result = {
  index : int;
  outcome : string;       (** "ok" | taxonomy kind | "unanswered" *)
  cycles : int;
  mem_checksum : int;
  site : string;          (** "fabric" | "cpu" | "" *)
  shard : int;
  rerouted : bool;
  retries : int;
  quarantines : int;
  latency_ms : float;     (** wall-clock; excluded from the digest *)
}

type result = {
  sent : int;
  completed : int;            (** responses received *)
  closed_unanswered : int;    (** connection closed before a response —
                                  the request was never admitted (only
                                  happens across a daemon drain) *)
  protocol_errors : int;      (** garbage or mismatched responses; 0 *)
  outcomes : (string * int) list;
      (** "ok" plus every taxonomy kind, all present (zeros included) *)
  outcome_latency : (string * (int * float * float)) list;
      (** per answered outcome: (count, p50 ms, p99 ms), computed through
          a {!Sketch} so quantile semantics match the daemon's watch
          frames; outcomes with no answered probes are absent. Latency
          stays out of {!result.digest}. *)
  ok_fabric : int;
  ok_cpu : int;
  rerouted : int;
  retried : int;              (** ok responses that consumed retries *)
  quarantines_observed : int;
  p50_ms : float;
  p99_ms : float;
  mean_ms : float;
  max_ms : float;
  wall_s : float;
  throughput_rps : float;
  digest : int;               (** FNV-1a over every probe, latency excluded *)
  service_stats : Json.t option;
      (** daemon's counter tree, fetched after the run (None if the
          daemon was already gone) *)
}

val run : config -> result
(** Drive the full stream; blocks until every lane finishes. Raises
    [Unix.Unix_error] if the initial connections cannot be opened. *)

val result_to_json : result -> Json.t
(** Schema [mesa-loadgen-v2]: v1 plus the [schema] tag and
    [outcome_latency_ms]; every v1 field and the digest are unchanged. *)

val find_service_counter : result -> string -> int option
(** Look up a counter in the fetched daemon stats by dotted path, e.g.
    ["service.breaker.recloses"]. *)
