type t = {
  base_ms : float;
  cap_ms : float;
  factor : float;
  prng : Prng.t;
  mutable attempts : int;
}

let create ?(base_ms = 1.0) ?(cap_ms = 20.0) ?(factor = 2.0) ~seed () =
  if not (base_ms > 0.0) then invalid_arg "Backoff.create: base_ms must be > 0";
  if not (cap_ms >= base_ms) then
    invalid_arg "Backoff.create: cap_ms must be >= base_ms";
  if not (factor >= 1.0) then invalid_arg "Backoff.create: factor must be >= 1";
  { base_ms; cap_ms; factor; prng = Prng.create seed; attempts = 0 }

let next_ms t =
  let ceiling =
    Float.min t.cap_ms (t.base_ms *. (t.factor ** float_of_int t.attempts))
  in
  t.attempts <- t.attempts + 1;
  Prng.float t.prng ceiling

let attempt t = t.attempts
