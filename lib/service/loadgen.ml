type config = {
  socket : string;
  requests : int;
  concurrency : int;
  seed : int;
  kernels : string list;
  chaos : bool;
  chaos_rate : float;
  injects : string list;
  deadline_ms : float option;
  no_fallback_rate : float;
}

let default_config =
  {
    socket = "/tmp/mesad.sock";
    requests = 200;
    concurrency = 8;
    seed = 1;
    kernels = [ "nn"; "kmeans"; "bfs" ];
    chaos = false;
    chaos_rate = 0.25;
    injects =
      [
        "transient@40";
        "permanent@80";
        "link@60";
        "ports@30";
        "config@1";
        (* A dense transient storm: exhausts the controller's consecutive
           retry budget and quarantines the shard mid-run — the schedule
           that exercises breaker trips and half-open recovery. *)
        "transient@40,transient@90,transient@140,transient@190,\
         transient@240,transient@290,transient@340,transient@390,\
         transient@440,transient@490";
      ];
    deadline_ms = None;
    no_fallback_rate = 0.1;
  }

let request_at cfg i =
  (* One independent splitmix stream per index: lanes can build their
     requests without sharing generator state. *)
  let p = Prng.create ((cfg.seed * 0x1000003) + (i * 0x9E3779B9) + 17) in
  let kernel =
    List.nth cfg.kernels (Prng.int p (List.length cfg.kernels))
  in
  let inject, fault_seed =
    if cfg.chaos && Prng.float p 1.0 < cfg.chaos_rate then
      ( Some (List.nth cfg.injects (Prng.int p (List.length cfg.injects))),
        Prng.int p 1_000_000 )
    else (None, 0x5EED)
  in
  let allow_fallback =
    not (cfg.chaos && Prng.float p 1.0 < cfg.no_fallback_rate)
  in
  {
    Proto.id = i;
    kernel;
    deadline_ms = cfg.deadline_ms;
    inject;
    fault_seed;
    allow_fallback;
  }

type probe_result = {
  index : int;
  outcome : string;
  cycles : int;
  mem_checksum : int;
  site : string;
  shard : int;
  rerouted : bool;
  retries : int;
  quarantines : int;
  latency_ms : float;
}

type result = {
  sent : int;
  completed : int;
  closed_unanswered : int;
  protocol_errors : int;
  outcomes : (string * int) list;
  outcome_latency : (string * (int * float * float)) list;
      (* outcome -> (count, p50 ms, p99 ms) over the answered probes,
         computed through the telemetry Sketch so the CLI report and the
         daemon's watch frames agree on quantile semantics *)
  ok_fabric : int;
  ok_cpu : int;
  rerouted : int;
  retried : int;
  quarantines_observed : int;
  p50_ms : float;
  p99_ms : float;
  mean_ms : float;
  max_ms : float;
  wall_s : float;
  throughput_rps : float;
  digest : int;
  service_stats : Json.t option;
}

(* ---------------- FNV-1a digest (latency excluded) ---------------- *)

let fnv_prime = 0x100000001b3L
let fnv_basis = 0xcbf29ce484222325L

let fnv_byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let fnv_int h i =
  let x = Int64.of_int i in
  let h = ref h in
  for k = 0 to 7 do
    h := fnv_byte !h (Int64.to_int (Int64.shift_right_logical x (8 * k)))
  done;
  !h

let fnv_string h s = String.fold_left (fun h c -> fnv_byte h (Char.code c)) h s

let digest_of_probes probes =
  let h =
    List.fold_left
      (fun h p ->
        let h = fnv_int h p.index in
        let h = fnv_string h p.outcome in
        let h = fnv_int h p.cycles in
        let h = fnv_int h p.mem_checksum in
        let h = fnv_string h p.site in
        let h = fnv_int h p.shard in
        let h = fnv_int h p.retries in
        fnv_int h p.quarantines)
      fnv_basis probes
  in
  Int64.to_int h land max_int

(* ---------------- one client lane ---------------- *)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let unanswered i =
  {
    index = i;
    outcome = "unanswered";
    cycles = 0;
    mem_checksum = 0;
    site = "";
    shard = -1;
    rerouted = false;
    retries = 0;
    quarantines = 0;
    latency_ms = 0.0;
  }

(* Serve the lane's share of the stream: indices lane, lane+c, lane+2c...
   Returns the probes in index order plus (sent, closed, protocol_errors). *)
let lane cfg lane_id =
  let indices =
    List.filter
      (fun i -> i mod cfg.concurrency = lane_id)
      (List.init cfg.requests Fun.id)
  in
  let probes = ref [] in
  let sent = ref 0 in
  let closed = ref 0 in
  let proto_errors = ref 0 in
  (match connect cfg.socket with
  | exception (Unix.Unix_error _ | Sys_error _) ->
    (* Daemon gone before this lane started: nothing was ever sent. *)
    ()
  | fd, ic, oc ->
    let probe_of_response i (rsp : Proto.response) lat =
      if rsp.Proto.rsp_id <> i then begin
        incr proto_errors;
        None
      end
      else
        match rsp.Proto.body with
        | Proto.Ok_run b ->
          Some
            {
              index = i;
              outcome = "ok";
              cycles = b.Proto.cycles;
              mem_checksum = b.Proto.mem_checksum;
              site = Proto.site_to_string b.Proto.site;
              shard = b.Proto.shard;
              rerouted = b.Proto.rerouted;
              retries = b.Proto.retries;
              quarantines = b.Proto.quarantines;
              latency_ms = lat;
            }
        | Proto.Err e ->
          Some
            {
              (unanswered i) with
              outcome = Proto.error_kind_to_string e.Proto.kind;
              latency_ms = lat;
            }
        | Proto.Stats_dump _ | Proto.Pong | Proto.Frame _ | Proto.Span _
        | Proto.End_stream ->
          incr proto_errors;
          None
    in
    let rec drive = function
      | [] -> ()
      | i :: rest -> (
        let req = request_at cfg i in
        match
          output_string oc (Proto.request_to_line (Proto.Run req));
          output_char oc '\n';
          flush oc
        with
        | exception (Sys_error _ | Unix.Unix_error _) ->
          (* Could not even send: daemon drained away; stop the lane. *)
          ()
        | () -> (
          incr sent;
          let t0 = Unix.gettimeofday () in
          match input_line ic with
          | exception (End_of_file | Sys_error _) ->
            (* Sent but the connection closed first: the daemon shut down
               before admitting it (admitted requests always get their
               response flushed before close). *)
            incr closed;
            probes := unanswered i :: !probes
          | line -> (
            let lat = (Unix.gettimeofday () -. t0) *. 1000.0 in
            match
              Result.bind (Json.of_string line) Proto.response_of_json
            with
            | Error _ ->
              incr proto_errors;
              drive rest
            | Ok rsp -> (
              match probe_of_response i rsp lat with
              | None -> drive rest
              | Some p ->
                probes := p :: !probes;
                drive rest))))
    in
    drive indices;
    (try Unix.close fd with Unix.Unix_error _ -> ()));
  (List.rev !probes, !sent, !closed, !proto_errors)

let fetch_service_stats path =
  match connect path with
  | exception (Unix.Unix_error _ | Sys_error _) -> None
  | fd, ic, oc -> (
    let cleanup () = try Unix.close fd with Unix.Unix_error _ -> () in
    match
      output_string oc (Proto.request_to_line (Proto.Get_stats (-1)));
      output_char oc '\n';
      flush oc;
      input_line ic
    with
    | exception (End_of_file | Sys_error _ | Unix.Unix_error _) ->
      cleanup ();
      None
    | line -> (
      cleanup ();
      match Result.bind (Json.of_string line) Proto.response_of_json with
      | Ok { Proto.body = Proto.Stats_dump j; _ } -> Some j
      | _ -> None))

let run cfg =
  if cfg.requests < 0 then invalid_arg "Loadgen.run: requests must be >= 0";
  if cfg.concurrency < 1 then
    invalid_arg "Loadgen.run: concurrency must be >= 1";
  if cfg.kernels = [] then invalid_arg "Loadgen.run: empty kernel mix";
  (* A daemon draining mid-send must surface as EPIPE on the lane's write
     (caught and counted as unanswered), not as a process-killing SIGPIPE. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let t0 = Unix.gettimeofday () in
  let slots = Array.make cfg.concurrency ([], 0, 0, 0) in
  let threads =
    List.init cfg.concurrency (fun l ->
        Thread.create (fun () -> slots.(l) <- lane cfg l) ())
  in
  List.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  let probes =
    Array.to_list slots
    |> List.concat_map (fun (ps, _, _, _) -> ps)
    |> List.sort (fun a b -> compare a.index b.index)
  in
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 slots in
  let sent = sum (fun (_, s, _, _) -> s) in
  let closed_unanswered = sum (fun (_, _, c, _) -> c) in
  let protocol_errors = sum (fun (_, _, _, e) -> e) in
  let count pred = List.length (List.filter pred probes) in
  let answered = List.filter (fun p -> p.outcome <> "unanswered") probes in
  let outcomes =
    ("ok", count (fun p -> p.outcome = "ok"))
    :: List.map
         (fun k ->
           let tag = Proto.error_kind_to_string k in
           (tag, count (fun p -> p.outcome = tag)))
         Proto.all_error_kinds
  in
  let lat = List.map (fun p -> p.latency_ms) answered in
  let pct p = if lat = [] then 0.0 else Stats.percentile p lat in
  (* Per-outcome latency quantiles via a single-window sketch — the same
     aggregation the daemon's watch frames use. Latency never feeds the
     digest, so these stay out of the determinism contract. *)
  let outcome_latency =
    List.filter_map
      (fun (tag, _) ->
        let sk = Sketch.create ~windows:1 () in
        List.iter
          (fun p -> if p.outcome = tag then Sketch.observe sk p.latency_ms)
          answered;
        if Sketch.window_count sk = 0 then None
        else
          Some
            ( tag,
              ( Sketch.window_count sk,
                Sketch.quantile sk 0.5,
                Sketch.quantile sk 0.99 ) ))
      outcomes
  in
  {
    sent;
    completed = List.length answered;
    closed_unanswered;
    protocol_errors;
    outcomes;
    outcome_latency;
    ok_fabric = count (fun p -> p.outcome = "ok" && p.site = "fabric");
    ok_cpu = count (fun p -> p.outcome = "ok" && p.site = "cpu");
    rerouted = count (fun p -> p.rerouted);
    retried = count (fun p -> p.outcome = "ok" && p.retries > 0);
    quarantines_observed =
      List.fold_left (fun a p -> a + p.quarantines) 0 probes;
    p50_ms = pct 0.5;
    p99_ms = pct 0.99;
    mean_ms = Stats.mean lat;
    max_ms = List.fold_left (fun a l -> Float.max a l) 0.0 lat;
    wall_s;
    throughput_rps =
      (if wall_s > 0.0 then float_of_int (List.length answered) /. wall_s
       else 0.0);
    digest = digest_of_probes probes;
    service_stats = fetch_service_stats cfg.socket;
  }

let result_to_json r =
  Json.Assoc
    [
      (* v2: adds this schema tag and per-outcome latency quantiles; every
         v1 field is unchanged, as is the digest. *)
      ("schema", Json.String "mesa-loadgen-v2");
      ("sent", Json.Int r.sent);
      ("completed", Json.Int r.completed);
      ("closed_unanswered", Json.Int r.closed_unanswered);
      ("protocol_errors", Json.Int r.protocol_errors);
      ( "outcomes",
        Json.Assoc (List.map (fun (k, v) -> (k, Json.Int v)) r.outcomes) );
      ( "outcome_latency_ms",
        Json.Assoc
          (List.map
             (fun (k, (n, p50, p99)) ->
               ( k,
                 Json.Assoc
                   [
                     ("count", Json.Int n);
                     ("p50", Json.Float p50);
                     ("p99", Json.Float p99);
                   ] ))
             r.outcome_latency) );
      ("ok_fabric", Json.Int r.ok_fabric);
      ("ok_cpu", Json.Int r.ok_cpu);
      ("rerouted", Json.Int r.rerouted);
      ("retried", Json.Int r.retried);
      ("quarantines_observed", Json.Int r.quarantines_observed);
      ("p50_ms", Json.Float r.p50_ms);
      ("p99_ms", Json.Float r.p99_ms);
      ("mean_ms", Json.Float r.mean_ms);
      ("max_ms", Json.Float r.max_ms);
      ("wall_s", Json.Float r.wall_s);
      ("throughput_rps", Json.Float r.throughput_rps);
      ("digest", Json.String (Printf.sprintf "%016x" r.digest));
      ( "service_stats",
        match r.service_stats with None -> Json.Null | Some j -> j );
    ]

let find_service_counter r path =
  match r.service_stats with
  | None -> None
  | Some j ->
    Option.bind (Json.path (String.split_on_char '.' path) j) Json.to_int
