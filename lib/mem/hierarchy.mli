(** The two-level cache hierarchy used across the evaluation: per-core 64 KB
    L1D, shared 8 MB unified L2, then DRAM (matching §6.1's simulated
    system).

    The hierarchy is a pure latency oracle: given an address and direction it
    updates cache state and returns the access latency in cycles. Port
    serialization (how many accesses can start per cycle) is the caller's
    concern — the CPU timing model and the accelerator's load-store unit each
    schedule their own ports, which is exactly how Figure 15's "ideal memory
    (infinite ports)" variant is expressed. *)

type config = {
  l1 : Cache.config;
  l2 : Cache.config;
  dram_latency : int;
  l2_shared_penalty : int;
    (** extra cycles per L2 access per additional sharer beyond the first,
        a simple contention model for the 16-core baseline *)
}

val default_config : config
(** 64 KB / 4-way / 64 B / 2-cycle L1; 8 MB / 8-way / 64 B / 20-cycle L2;
    100-cycle DRAM. *)

type t

val create : ?sharers:int -> config -> t
(** A hierarchy with a private L1 and its own L2. [sharers] scales the L2
    latency penalty (default 1 = no sharing). May return a hierarchy parked
    by {!release} (fully reset — indistinguishable from fresh). *)

val release : t -> unit
(** Reset [t] and park it for reuse by a later {!create} with an equal
    config (any domain). The caller promises not to touch [t] afterwards.
    No-op for {!create_shared} members, whose L2 is aliased by siblings. *)

val create_shared : config -> cores:int -> t array
(** [cores] hierarchies with private L1s over one shared L2 (and shared L2
    statistics). *)

val load_latency : t -> int -> int
(** Cycles to satisfy a load at the given byte address, updating cache
    state. *)

val store_latency : t -> int -> int
(** Cycles for a store (write-allocate; dirty evictions cost a DRAM
    write). *)

val min_latency : t -> int
(** The L1 hit latency: lower bound of any access. *)

val max_latency : t -> int
(** Worst-case latency (L1 miss + L2 miss + dirty eviction). *)

val l1 : t -> Cache.t
val l2 : t -> Cache.t

val reset_stats : t -> unit
val invalidate_all : t -> unit

val level_counts : t -> (string * int) list
(** Direct readout of the per-level access mix
    ([l1_hits]/[l1_misses]/[l2_hits]/[l2_misses]/[writebacks]) — the
    profiler's memory-side summary, available without a stats snapshot. *)

val register_stats : t -> Stats.group -> unit
(** Register [l1] and [l2] subgroups (per-level hit/miss/writeback probes)
    plus the hierarchy's fixed parameters under [grp]. *)
