type config = {
  l1 : Cache.config;
  l2 : Cache.config;
  dram_latency : int;
  l2_shared_penalty : int;
}

let default_config =
  {
    l1 = Cache.config ~size_bytes:(64 * 1024) ~ways:4 ~line_bytes:64 ~hit_latency:2;
    l2 = Cache.config ~size_bytes:(8 * 1024 * 1024) ~ways:8 ~line_bytes:64 ~hit_latency:20;
    dram_latency = 100;
    l2_shared_penalty = 1;
  }

(* [poolable] marks hierarchies whose caches are privately owned (built by
   {!create}): only those may be parked for reuse — a {!create_shared}
   member's L2 is aliased by its siblings. *)
type t = {
  cfg : config;
  l1 : Cache.t;
  l2 : Cache.t;
  sharers : int;
  poolable : bool;
}

(* Recycled hierarchies, keyed by structural config equality. The harness
   builds one per measurement; with SoA caches a reset is three array fills,
   far cheaper than reallocating an 8 MB L2's line arrays each time. *)
let pool_lock = Mutex.create ()
let pool : t list ref = ref []
let pool_max = 16

let create ?(sharers = 1) (cfg : config) =
  let recycled =
    Mutex.protect pool_lock (fun () ->
        match
          List.partition (fun t -> t.cfg = cfg && t.sharers = sharers) !pool
        with
        | t :: rest_same, rest ->
          pool := rest_same @ rest;
          Some t
        | [], _ -> None)
  in
  match recycled with
  | Some t -> t
  | None ->
    { cfg; l1 = Cache.create cfg.l1; l2 = Cache.create cfg.l2; sharers; poolable = true }

let release t =
  if t.poolable then begin
    Cache.reset t.l1;
    Cache.reset t.l2;
    Mutex.protect pool_lock (fun () ->
        if List.length !pool < pool_max then pool := t :: !pool)
  end

let create_shared (cfg : config) ~cores =
  let l2 = Cache.create cfg.l2 in
  Array.init cores (fun _ ->
      { cfg; l1 = Cache.create cfg.l1; l2; sharers = cores; poolable = false })

let l2_latency t =
  (Cache.geometry t.l2).hit_latency + (t.cfg.l2_shared_penalty * (t.sharers - 1))

let access t addr ~write =
  let l1_lat = (Cache.geometry t.l1).hit_latency in
  match Cache.access t.l1 addr ~write with
  | Cache.Hit -> l1_lat
  | Cache.Miss { dirty_eviction = l1_dirty } ->
    let below =
      match Cache.access t.l2 addr ~write:false with
      | Cache.Hit -> l2_latency t
      | Cache.Miss { dirty_eviction = l2_dirty } ->
        l2_latency t + t.cfg.dram_latency + (if l2_dirty then t.cfg.dram_latency / 2 else 0)
    in
    (* A dirty L1 eviction writes through to L2; charge its hit latency. *)
    l1_lat + below + (if l1_dirty then l2_latency t / 2 else 0)

let load_latency t addr = access t addr ~write:false
let store_latency t addr = access t addr ~write:true
let min_latency t = (Cache.geometry t.l1).hit_latency

let max_latency t =
  (Cache.geometry t.l1).hit_latency + l2_latency t + t.cfg.dram_latency
  + (t.cfg.dram_latency / 2) + (l2_latency t / 2)

let l1 t = t.l1
let l2 t = t.l2

let reset_stats t =
  Cache.reset_stats t.l1;
  Cache.reset_stats t.l2

let level_counts t =
  [
    ("l1_hits", Cache.hits t.l1);
    ("l1_misses", Cache.misses t.l1);
    ("l2_hits", Cache.hits t.l2);
    ("l2_misses", Cache.misses t.l2);
    ("writebacks", Cache.writebacks t.l1 + Cache.writebacks t.l2);
  ]

let register_stats t grp =
  Cache.register_stats t.l1 (Stats.subgroup grp "l1");
  Cache.register_stats t.l2 (Stats.subgroup grp "l2");
  Stats.int_probe grp "dram_latency" (fun () -> t.cfg.dram_latency);
  Stats.int_probe grp "sharers" (fun () -> t.sharers)

let invalidate_all t =
  Cache.invalidate_all t.l1;
  Cache.invalidate_all t.l2
