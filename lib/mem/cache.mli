(** Set-associative cache timing model (tags only; data lives in
    {!Main_memory}).

    Write-back, write-allocate, LRU replacement. The model answers one
    question per access — hit or miss (and whether a dirty line was evicted) —
    and keeps the counters the evaluation needs (hit rate, AMAT inputs,
    writeback traffic). *)

type config = {
  size_bytes : int;   (** total capacity *)
  ways : int;         (** associativity *)
  line_bytes : int;   (** line size, a power of two *)
  hit_latency : int;  (** cycles for a hit in this level *)
}

val config :
  size_bytes:int -> ways:int -> line_bytes:int -> hit_latency:int -> config
(** Validating constructor. Raises [Invalid_argument] on non-power-of-two
    geometry or a capacity not divisible by [ways * line_bytes]. *)

type outcome = Hit | Miss of { dirty_eviction : bool }

type t

val create : config -> t
val geometry : t -> config

val access : t -> int -> write:bool -> outcome
(** Look up the line containing the byte address; allocate on miss; mark
    dirty on writes. *)

val probe : t -> int -> bool
(** Non-destructive lookup: would this address hit? Does not update LRU or
    counters. *)

val invalidate_all : t -> unit
(** Drop every line (e.g. at region boundaries in tests); statistics are
    kept. *)

(** {1 Statistics} *)

val hits : t -> int
val misses : t -> int
val writebacks : t -> int
val accesses : t -> int
val hit_rate : t -> float
(** 0 when no access has been made. *)

val reset_stats : t -> unit

val reset : t -> unit
(** Restore the cache to its freshly-created state: every line invalid,
    statistics and the internal LRU clock zeroed. Recycling a cache through
    [reset] is indistinguishable from {!create}. *)

val register_stats : t -> Stats.group -> unit
(** Expose hits/misses/writebacks/accesses/hit_rate as snapshot-time probes
    under [grp]. *)
