(** Byte-addressable main memory holding the simulated program's data.

    This is the *functional* half of the memory system: it stores actual
    bytes so that the CPU interpreter and the accelerator engine compute real
    values (their architectural results are compared in the test suite).
    Timing lives in {!Cache} / {!Hierarchy}.

    All accesses are little-endian, matching RISC-V. Word values are exchanged
    as native ints sign-extended from 32 bits. *)

type t

val create : ?size:int -> unit -> t
(** [create ~size ()] allocates [size] bytes of zeroed memory (default
    16 MiB). Reuses a buffer parked by {!release} when one of the exact size
    is available — re-zeroed, so indistinguishable from a fresh
    allocation. *)

val release : t -> unit
(** Park [t]'s backing buffer for reuse by a later {!create} of the same
    size (any domain). The caller promises not to touch [t] afterwards —
    harness hot paths call this after a measurement's memory is fully
    consumed; ordinary callers may simply drop memories and let the GC
    collect them. *)

val size : t -> int

val load_byte : t -> int -> int
(** Sign-extended byte. *)

val load_byte_u : t -> int -> int
val load_half : t -> int -> int
(** Sign-extended halfword. *)

val load_half_u : t -> int -> int
val load_word : t -> int -> int
(** Sign-extended 32-bit word. *)

val load_dword : t -> int -> int64
(** 64-bit doubleword (for the RV64I interpreter). *)

val store_byte : t -> int -> int -> unit
val store_half : t -> int -> int -> unit
val store_word : t -> int -> int -> unit
val store_dword : t -> int -> int64 -> unit

val load_float32 : t -> int -> float
(** Read 4 bytes as an IEEE-754 single; the result is exactly representable
    as an OCaml float. *)

val store_float32 : t -> int -> float -> unit
(** Round to single precision and store 4 bytes. *)

val copy : t -> t
(** Deep copy; used to run the same initial state through the CPU reference
    and the accelerator. *)

val restore : t -> from:t -> unit
(** Overwrite [t]'s contents with a checkpoint previously taken by {!copy}
    (sizes must match) — in-place, so existing handles on [t] stay valid.
    Used to roll back a fault-corrupted execution window. *)

val equal : t -> t -> bool
(** Byte-wise equality, for functional-equivalence checks. *)

val checksum : t -> int
(** FNV-1a over the full contents, folded to a non-negative int — a compact
    fingerprint of final memory for golden tests. Platform-stable on any
    64-bit build. *)

val blit_words : t -> int -> int array -> unit
(** [blit_words t addr ws] stores consecutive words starting at [addr]. *)

val blit_floats : t -> int -> float array -> unit
(** Store consecutive float32 values. *)

val read_words : t -> int -> int -> int array
(** [read_words t addr n] reads [n] consecutive sign-extended words. *)

val read_floats : t -> int -> int -> float array
