type t = { data : Bytes.t }

(* Recycled backing buffers. The harness allocates one default-sized (16 MiB)
   memory per measurement; creating each from scratch costs a major-heap
   allocation that, across parallel worker domains, dominates GC pacing.
   Released buffers park here (shared across domains — a mutex around a
   rarely-touched list) and are re-zeroed on reuse, which is observably
   identical to a fresh allocation at a fraction of the cost. *)
let pool_lock = Mutex.create ()
let pool : Bytes.t list ref = ref []
let pool_bytes = ref 0
let pool_cap = 256 * 1024 * 1024

let create ?(size = 16 * 1024 * 1024) () =
  let recycled =
    Mutex.protect pool_lock (fun () ->
        match List.partition (fun b -> Bytes.length b = size) !pool with
        | b :: rest_same, rest ->
          pool := rest_same @ rest;
          pool_bytes := !pool_bytes - Bytes.length b;
          Some b
        | [], _ -> None)
  in
  match recycled with
  | Some b ->
    Bytes.fill b 0 size '\000';
    { data = b }
  | None -> { data = Bytes.make size '\000' }

let release t =
  Mutex.protect pool_lock (fun () ->
      if !pool_bytes + Bytes.length t.data <= pool_cap then begin
        pool := t.data :: !pool;
        pool_bytes := !pool_bytes + Bytes.length t.data
      end)

let size t = Bytes.length t.data

let check t addr width =
  if addr < 0 || addr + width > Bytes.length t.data then
    invalid_arg (Printf.sprintf "Main_memory: access at 0x%x width %d out of bounds" addr width)

let sign_extend ~bits v =
  let shift = Sys.int_size - bits in
  (v lsl shift) asr shift

let load_byte_u t addr =
  check t addr 1;
  Char.code (Bytes.get t.data addr)

let load_byte t addr = sign_extend ~bits:8 (load_byte_u t addr)

let load_half_u t addr =
  check t addr 2;
  Bytes.get_uint16_le t.data addr

let load_half t addr = sign_extend ~bits:16 (load_half_u t addr)

let load_word t addr =
  check t addr 4;
  Int32.to_int (Bytes.get_int32_le t.data addr)

let load_dword t addr =
  check t addr 8;
  Bytes.get_int64_le t.data addr

let store_dword t addr v =
  check t addr 8;
  Bytes.set_int64_le t.data addr v

let store_byte t addr v =
  check t addr 1;
  Bytes.set t.data addr (Char.chr (v land 0xFF))

let store_half t addr v =
  check t addr 2;
  Bytes.set_uint16_le t.data addr (v land 0xFFFF)

let store_word t addr v =
  check t addr 4;
  Bytes.set_int32_le t.data addr (Int32.of_int v)

let load_float32 t addr =
  check t addr 4;
  Int32.float_of_bits (Bytes.get_int32_le t.data addr)

let store_float32 t addr f =
  check t addr 4;
  Bytes.set_int32_le t.data addr (Int32.bits_of_float f)

let copy t = { data = Bytes.copy t.data }

let restore t ~from =
  if Bytes.length t.data <> Bytes.length from.data then
    invalid_arg "Main_memory.restore: size mismatch";
  Bytes.blit from.data 0 t.data 0 (Bytes.length t.data)

let equal a b = Bytes.equal a.data b.data

(* FNV-1a with the offset basis truncated to OCaml's 63-bit int, folded to a
   non-negative value so it prints identically on every 64-bit platform. *)
let checksum t =
  let h = ref 0x3bf29ce484222325 in
  for i = 0 to Bytes.length t.data - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get t.data i)) * 0x100000001b3
  done;
  !h land max_int

let blit_words t addr ws =
  Array.iteri (fun i w -> store_word t (addr + (4 * i)) w) ws

let blit_floats t addr fs =
  Array.iteri (fun i f -> store_float32 t (addr + (4 * i)) f) fs

let read_words t addr n = Array.init n (fun i -> load_word t (addr + (4 * i)))
let read_floats t addr n = Array.init n (fun i -> load_float32 t (addr + (4 * i)))
