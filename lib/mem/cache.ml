type config = {
  size_bytes : int;
  ways : int;
  line_bytes : int;
  hit_latency : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let config ~size_bytes ~ways ~line_bytes ~hit_latency =
  if not (is_pow2 line_bytes) then invalid_arg "Cache.config: line size must be a power of two";
  if ways <= 0 then invalid_arg "Cache.config: ways must be positive";
  if size_bytes mod (ways * line_bytes) <> 0 then
    invalid_arg "Cache.config: capacity not divisible by ways * line size";
  let sets = size_bytes / (ways * line_bytes) in
  if not (is_pow2 sets) then invalid_arg "Cache.config: set count must be a power of two";
  if hit_latency < 0 then invalid_arg "Cache.config: negative hit latency";
  { size_bytes; ways; line_bytes; hit_latency }

type outcome = Hit | Miss of { dirty_eviction : bool }

(* Lines live in flat structure-of-arrays storage indexed by
   [set * ways + way] — a large L2 is three int arrays instead of hundreds
   of thousands of little heap records, so creating (and recycling) a
   hierarchy per measurement is cheap and lookups walk contiguous memory.
   [meta] packs the valid (bit 0) and dirty (bit 1) flags, which makes
   {!invalidate_all} a single fill. *)
type t = {
  cfg : config;
  tags : int array;
  meta : int array;
  lru : int array;
  set_mask : int;
  line_shift : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;
}

let create cfg =
  let nsets = cfg.size_bytes / (cfg.ways * cfg.line_bytes) in
  let nlines = nsets * cfg.ways in
  let line_shift =
    let rec go n acc = if n = 1 then acc else go (n lsr 1) (acc + 1) in
    go cfg.line_bytes 0
  in
  {
    cfg;
    tags = Array.make nlines 0;
    meta = Array.make nlines 0;
    lru = Array.make nlines 0;
    set_mask = nsets - 1;
    line_shift;
    clock = 0;
    hits = 0;
    misses = 0;
    writebacks = 0;
  }

let geometry t = t.cfg

(* First way holding a valid line with this tag, or -1. [base] is the
   set's first line index. *)
let find_way t base tag =
  let ways = t.cfg.ways in
  let rec go i =
    if i = ways then -1
    else if t.meta.(base + i) land 1 <> 0 && t.tags.(base + i) = tag then base + i
    else go (i + 1)
  in
  go 0

let access t addr ~write =
  t.clock <- t.clock + 1;
  let line_addr = addr lsr t.line_shift in
  let set = line_addr land t.set_mask in
  let tag = line_addr in
  let base = set * t.cfg.ways in
  let i = find_way t base tag in
  if i >= 0 then begin
    t.hits <- t.hits + 1;
    t.lru.(i) <- t.clock;
    if write then t.meta.(i) <- t.meta.(i) lor 2;
    Hit
  end
  else begin
    t.misses <- t.misses + 1;
    (* Choose an invalid way if any, else the LRU way (first strict minimum
       in way order — the same victim the line-record implementation
       picked). *)
    let best = ref base in
    for k = base to base + t.cfg.ways - 1 do
      if t.meta.(k) land 1 = 0 then begin
        if t.meta.(!best) land 1 <> 0 then best := k
      end
      else if t.meta.(!best) land 1 <> 0 && t.lru.(k) < t.lru.(!best) then best := k
    done;
    let v = !best in
    let dirty_eviction = t.meta.(v) land 3 = 3 in
    if dirty_eviction then t.writebacks <- t.writebacks + 1;
    t.tags.(v) <- tag;
    t.meta.(v) <- (if write then 3 else 1);
    t.lru.(v) <- t.clock;
    Miss { dirty_eviction }
  end

let probe t addr =
  let line_addr = addr lsr t.line_shift in
  let set = line_addr land t.set_mask in
  find_way t (set * t.cfg.ways) line_addr >= 0

let invalidate_all t = Array.fill t.meta 0 (Array.length t.meta) 0

let hits t = t.hits
let misses t = t.misses
let writebacks t = t.writebacks
let accesses t = t.hits + t.misses

let hit_rate t =
  let n = accesses t in
  if n = 0 then 0.0 else float_of_int t.hits /. float_of_int n

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.writebacks <- 0

let reset t =
  invalidate_all t;
  reset_stats t;
  t.clock <- 0

let register_stats t grp =
  Stats.int_probe grp "hits" (fun () -> t.hits);
  Stats.int_probe grp "misses" (fun () -> t.misses);
  Stats.int_probe grp "writebacks" (fun () -> t.writebacks);
  Stats.int_probe grp "accesses" (fun () -> accesses t);
  Stats.derived grp "hit_rate" (fun () -> hit_rate t)
