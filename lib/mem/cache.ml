type config = {
  size_bytes : int;
  ways : int;
  line_bytes : int;
  hit_latency : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let config ~size_bytes ~ways ~line_bytes ~hit_latency =
  if not (is_pow2 line_bytes) then invalid_arg "Cache.config: line size must be a power of two";
  if ways <= 0 then invalid_arg "Cache.config: ways must be positive";
  if size_bytes mod (ways * line_bytes) <> 0 then
    invalid_arg "Cache.config: capacity not divisible by ways * line size";
  let sets = size_bytes / (ways * line_bytes) in
  if not (is_pow2 sets) then invalid_arg "Cache.config: set count must be a power of two";
  if hit_latency < 0 then invalid_arg "Cache.config: negative hit latency";
  { size_bytes; ways; line_bytes; hit_latency }

type outcome = Hit | Miss of { dirty_eviction : bool }

type line = { mutable tag : int; mutable valid : bool; mutable dirty : bool; mutable lru : int }

type t = {
  cfg : config;
  sets : line array array; (* sets.(set).(way) *)
  set_mask : int;
  line_shift : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;
}

let create cfg =
  let nsets = cfg.size_bytes / (cfg.ways * cfg.line_bytes) in
  let line_shift =
    let rec go n acc = if n = 1 then acc else go (n lsr 1) (acc + 1) in
    go cfg.line_bytes 0
  in
  let sets =
    Array.init nsets (fun _ ->
        Array.init cfg.ways (fun _ -> { tag = 0; valid = false; dirty = false; lru = 0 }))
  in
  { cfg; sets; set_mask = nsets - 1; line_shift; clock = 0; hits = 0; misses = 0; writebacks = 0 }

let geometry t = t.cfg

let locate t addr =
  let line_addr = addr lsr t.line_shift in
  let set = line_addr land t.set_mask in
  let tag = line_addr lsr 0 in
  (t.sets.(set), tag)

let find_way ways tag =
  let rec go i =
    if i = Array.length ways then None
    else if ways.(i).valid && ways.(i).tag = tag then Some ways.(i)
    else go (i + 1)
  in
  go 0

let access t addr ~write =
  t.clock <- t.clock + 1;
  let ways, tag = locate t addr in
  match find_way ways tag with
  | Some line ->
    t.hits <- t.hits + 1;
    line.lru <- t.clock;
    if write then line.dirty <- true;
    Hit
  | None ->
    t.misses <- t.misses + 1;
    (* Choose an invalid way if any, else the LRU way. *)
    let victim =
      let best = ref ways.(0) in
      Array.iter
        (fun line ->
          if not line.valid then begin
            if !best.valid then best := line
          end
          else if !best.valid && line.lru < !best.lru then best := line)
        ways;
      !best
    in
    let dirty_eviction = victim.valid && victim.dirty in
    if dirty_eviction then t.writebacks <- t.writebacks + 1;
    victim.tag <- tag;
    victim.valid <- true;
    victim.dirty <- write;
    victim.lru <- t.clock;
    Miss { dirty_eviction }

let probe t addr =
  let ways, tag = locate t addr in
  Option.is_some (find_way ways tag)

let invalidate_all t =
  Array.iter
    (fun ways ->
      Array.iter
        (fun line ->
          line.valid <- false;
          line.dirty <- false)
        ways)
    t.sets

let hits t = t.hits
let misses t = t.misses
let writebacks t = t.writebacks
let accesses t = t.hits + t.misses

let hit_rate t =
  let n = accesses t in
  if n = 0 then 0.0 else float_of_int t.hits /. float_of_int n

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.writebacks <- 0

let register_stats t grp =
  Stats.int_probe grp "hits" (fun () -> t.hits);
  Stats.int_probe grp "misses" (fun () -> t.misses);
  Stats.int_probe grp "writebacks" (fun () -> t.writebacks);
  Stats.int_probe grp "accesses" (fun () -> accesses t);
  Stats.derived grp "hit_rate" (fun () -> hit_rate t)
