let scale_for ~width values =
  let vmax = List.fold_left Float.max 0.0 values in
  if vmax <= 0.0 then 0.0 else float_of_int width /. vmax

let bar ~scale v = String.make (max 0 (int_of_float (Float.round (v *. scale)))) '#'

let bars ?(width = 50) ?baseline ~title series =
  let buf = Buffer.create 256 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let label_w =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 series
  in
  let scale = scale_for ~width (List.map snd series) in
  let marker =
    match baseline with
    | Some b when scale > 0.0 -> Some (int_of_float (Float.round (b *. scale)))
    | _ -> None
  in
  List.iter
    (fun (label, v) ->
      let b = Bytes.of_string (bar ~scale v ^ String.make width ' ') in
      (match marker with
      | Some m when m >= 0 && m < Bytes.length b -> Bytes.set b m '|'
      | _ -> ());
      Buffer.add_string buf
        (Printf.sprintf "  %-*s %s %.2f\n" label_w label
           (String.trim (Bytes.to_string b) |> fun s -> Printf.sprintf "%-*s" width s)
           v))
    series;
  Buffer.contents buf

let glyphs = [| '#'; '='; '-'; '+'; '*' |]

(* Cold-to-hot ramp for [heat]. *)
let ramp = [| '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@'; 'X' |]

let heat ?(legend = true) ~title ~rows ~cols f =
  let buf = Buffer.create 256 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let vmax = ref 0.0 in
  let cells = Array.init rows (fun r -> Array.init cols (fun c -> f r c)) in
  Array.iter (Array.iter (fun v -> vmax := Float.max !vmax v)) cells;
  let glyph v =
    if !vmax <= 0.0 || v <= 0.0 then ramp.(0)
    else
      let i = int_of_float (v /. !vmax *. float_of_int (Array.length ramp)) in
      ramp.(min (Array.length ramp - 1) (max 0 i))
  in
  for r = 0 to rows - 1 do
    Buffer.add_string buf (Printf.sprintf "  %3d " r);
    for c = 0 to cols - 1 do
      Buffer.add_char buf (glyph cells.(r).(c))
    done;
    Buffer.add_char buf '\n'
  done;
  if legend then begin
    Buffer.add_string buf "      ";
    Array.iter (Buffer.add_char buf) ramp;
    Buffer.add_string buf (Printf.sprintf "  (max %.2f)\n" !vmax)
  end;
  Buffer.contents buf

let grouped ?(width = 50) ~title ~series_names rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  List.iteri
    (fun i name ->
      Buffer.add_string buf
        (Printf.sprintf "  [%c] %s\n" glyphs.(i mod Array.length glyphs) name))
    series_names;
  let label_w = List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows in
  let scale = scale_for ~width (List.concat_map snd rows) in
  List.iter
    (fun (label, values) ->
      List.iteri
        (fun i v ->
          let g = glyphs.(i mod Array.length glyphs) in
          let b = String.make (max 0 (int_of_float (Float.round (v *. scale)))) g in
          Buffer.add_string buf
            (Printf.sprintf "  %-*s %-*s %.2f\n"
               label_w
               (if i = 0 then label else "")
               width b v))
        values)
    rows;
  Buffer.contents buf
