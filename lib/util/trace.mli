(** Chrome [trace_event] timeline emission ([chrome://tracing] /
    [ui.perfetto.dev]). The controller records one span per translation,
    offload window and reconfiguration; timestamps are wall-clock simulated
    cycles, written to the JSON [ts] field (nominally microseconds — the
    viewer only cares about relative placement). *)

type span = {
  name : string;
  cat : string;   (** trace category, e.g. "mesa", "fabric" *)
  ts : int;       (** start, in simulated cycles *)
  dur : int;      (** duration in cycles; 0 renders as an instant event *)
  args : (string * Json.t) list;
}

val span : ?args:(string * Json.t) list -> cat:string -> ts:int -> dur:int -> string -> span
val instant : ?args:(string * Json.t) list -> cat:string -> ts:int -> string -> span

val to_chrome_json : span list -> Json.t
(** The [{"traceEvents": [...]}] envelope. *)

val to_string : span list -> string
