(** Chrome [trace_event] timeline emission ([chrome://tracing] /
    [ui.perfetto.dev]). The controller records one span per translation,
    offload window and reconfiguration; the profiler adds one lane per PE
    and per cache port. Timestamps are wall-clock simulated cycles, written
    to the JSON [ts] field (nominally microseconds — the viewer only cares
    about relative placement).

    Lanes: Perfetto groups events by [(pid, tid)]. Controller-level spans
    keep the default lane (0, 0); the profiler assigns each PE and cache
    port its own [tid] and labels the lanes with {!process_name} /
    {!thread_name} metadata events. *)

type span = {
  name : string;
  cat : string;   (** trace category, e.g. "mesa", "fabric" *)
  ts : int;       (** start, in simulated cycles *)
  dur : int;      (** duration in cycles; 0 renders as an instant event *)
  pid : int;      (** Perfetto process lane (default 0) *)
  tid : int;      (** Perfetto thread lane within the process (default 0) *)
  meta : string option;
      (** [Some name] marks a metadata ([ph = "M"]) record naming a lane *)
  args : (string * Json.t) list;
}

val span :
  ?pid:int -> ?tid:int -> ?args:(string * Json.t) list ->
  cat:string -> ts:int -> dur:int -> string -> span

val instant :
  ?pid:int -> ?tid:int -> ?args:(string * Json.t) list ->
  cat:string -> ts:int -> string -> span

val process_name : pid:int -> string -> span
(** Metadata event naming a process lane. *)

val thread_name : pid:int -> tid:int -> string -> span
(** Metadata event naming a thread lane within a process. *)

val to_chrome_json : span list -> Json.t
(** The [{"traceEvents": [...]}] envelope. *)

val to_string : span list -> string
