(* Process-wide simulated-cycle meter.

   Every completed simulation window — accelerator executions and CPU-model
   runs alike — adds its cycle count here. The bench harness reads deltas
   around each experiment to report `simulated_cycles` and derive
   `cycles_per_second`: unlike wall-clock, the delta is deterministic and
   invariant under `--jobs`, which is what lets CI gate on exact values.

   A single atomic is deliberate: workers in the harness pool run on other
   domains, and additions are far too coarse-grained (one per simulated
   window, not per cycle) for contention to matter. *)

let counter = Atomic.make 0

let add cycles = if cycles > 0 then ignore (Atomic.fetch_and_add counter cycles)
let read () = Atomic.get counter
