(** Horizontal ASCII bar charts, for rendering the paper's figures as
    pictures next to their numeric tables. *)

val bars :
  ?width:int -> ?baseline:float -> title:string -> (string * float) list -> string
(** [bars ~title series] renders one bar per (label, value). Values are
    scaled so the largest bar spans [width] characters (default 50). When
    [baseline] is given, a marker [|] is drawn at that value's position
    (e.g. the 1.0x line of a speedup chart). Returns a multi-line string
    ending in a newline; the empty series renders just the title. *)

val grouped :
  ?width:int ->
  title:string ->
  series_names:string list ->
  (string * float list) list ->
  string
(** Multi-series variant: each row carries one bar per series, tagged with
    the series' index glyph. Used for figures comparing M-128 vs M-512. *)

val heat :
  ?legend:bool -> title:string -> rows:int -> cols:int -> (int -> int -> float) ->
  string
(** [heat ~title ~rows ~cols f] renders an ASCII heatmap, one glyph per
    cell, with [f row col] giving each cell's intensity. Intensities are
    normalized to the maximum (a non-positive maximum renders all-cold);
    the 10-step ramp runs [. : - = + * # % @ X]. The profiler draws per-PE
    utilization and per-NoC-link occupancy with this. [legend] (default
    true) appends the ramp with its value thresholds. *)
