(** Minimal dependency-free JSON: enough to dump the stats registry, emit
    Chrome [trace_event] files and round-trip them in the test suite. Not a
    general-purpose implementation — no streaming, surrogate pairs decode to
    the BMP only. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

val to_string : ?indent:int -> t -> string
(** Serialize; [indent = 0] gives a compact single line (default 2).
    NaN and infinities serialize as [null] (JSON has no encoding for them). *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document. *)

val member : string -> t -> t option
(** Field of an object; [None] on missing key or non-object. *)

val path : string list -> t -> t option
(** Nested field lookup, e.g. [path ["cpu"; "cycles"]]. *)

val to_int : t -> int option
(** Also accepts integral floats. *)

val to_float : t -> float option
(** Also accepts ints. *)

val to_list : t -> t list option
val to_assoc : t -> (string * t) list option
val to_string_opt : t -> string option
