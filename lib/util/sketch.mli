(** Deterministic sliding-window quantile sketches and windowed rate
    counters — the aggregation layer behind the live-telemetry frames.

    A sketch is a fixed-geometry log-bucketed histogram replicated over a
    ring of [windows] sub-windows. {!observe} lands in the current
    sub-window; {!advance} rotates the ring, discarding the oldest
    sub-window — so the "window" the quantile queries see always covers
    the last [windows] advances. Nothing here reads a clock: when the ring
    rotates is entirely the caller's decision, which makes every query a
    pure function of the (observation, advance) sequence — the property
    the qcheck suite pins.

    Buckets grow geometrically by ratio [r = 2{^1/4}] from a floor of
    [1e-3], so a reported quantile [q] satisfies
    [true_q <= quantile q <= max lo (true_q * r)] — a guaranteed
    ≤ 19% relative overestimate, never an underestimate. Counts, sums and
    the window maximum are exact.

    {!merge} is pointwise over age-aligned sub-windows, making it
    associative and commutative for sketches of the same geometry — two
    shards' sketches combine into the fleet view without resorting raw
    samples. *)

type t

val create : ?buckets:int -> ?windows:int -> unit -> t
(** A fresh, empty sketch. [buckets] (default 128) log-spaced buckets per
    sub-window, [windows] (default 8) sub-windows in the ring. Raises
    [Invalid_argument] when either is below 1. *)

val buckets : t -> int
val windows : t -> int

val ratio : float
(** The fixed bucket growth ratio, [2{^1/4}] — the quantile error bound. *)

val floor_value : float
(** The lowest bucket's upper bound ([1e-3]); observations at or below it
    are indistinguishable. *)

val observe : t -> float -> unit
(** Record one observation into the current sub-window. Non-finite or
    negative values clamp into the floor bucket. *)

val advance : t -> unit
(** Rotate the ring: the oldest sub-window is discarded and a fresh one
    becomes current. Call on whatever cadence defines "the window" —
    telemetry uses wall-clock ticks, tests use explicit counts. *)

val window_count : t -> int
(** Observations currently inside the window (all live sub-windows). *)

val window_sum : t -> float

val window_max : t -> float
(** Exact maximum inside the window; [0.] when empty. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [\[0,1\]]: nearest-rank over the window's
    buckets, reported as the bucket's upper bound clamped to the exact
    window maximum. [0.] on an empty window. Raises [Invalid_argument] on
    [q] outside [\[0,1\]]. *)

val total_count : t -> int
(** Lifetime observations, never discarded by {!advance}. *)

val total_sum : t -> float

val life_max : t -> float

val merge : t -> t -> t
(** Pointwise sum over age-aligned sub-windows plus lifetime totals; the
    inputs are untouched. Raises [Invalid_argument] when geometries
    (buckets, windows) differ. Associative and commutative up to
    {!to_json} equality. *)

val to_json : t -> Json.t
(** Canonical encoding (sub-windows listed by age, sparse buckets) with
    schema tag [mesa-sketch-v1]. *)

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json}: [of_json (to_json t)] observes-as and
    queries-as [t]. *)

(** Windowed rate counter: the same ring-of-sub-windows discipline for a
    plain event count — "how many in the last N ticks" next to the
    lifetime total. *)
module Rate : sig
  type t

  val create : ?windows:int -> unit -> t
  (** Default 8 sub-windows. Raises [Invalid_argument] below 1. *)

  val incr : t -> unit
  val add : t -> int -> unit

  val advance : t -> unit
  (** Rotate, discarding the oldest sub-window's count. *)

  val window : t -> int
  (** Events inside the window. *)

  val total : t -> int
  (** Lifetime events. *)
end
