let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
    let log_sum = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (log_sum /. float_of_int (List.length xs))

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
    sqrt var

let percentile p xs =
  match List.sort compare xs with
  | [] -> invalid_arg "Stats.percentile: empty list"
  | sorted ->
    let n = List.length sorted in
    let rank = int_of_float (ceil (p *. float_of_int n)) - 1 in
    let rank = max 0 (min (n - 1) rank) in
    List.nth sorted rank

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x
let iclamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x
let div_ceil a b = (a + b - 1) / b

module Running = struct
  type t = { mutable sum : float; mutable count : int }

  let create () = { sum = 0.0; count = 0 }

  let add t x =
    t.sum <- t.sum +. x;
    t.count <- t.count + 1

  let count t = t.count
  let sum t = t.sum
  let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count
  let mean_or t default = if t.count = 0 then default else mean t

  let reset t =
    t.sum <- 0.0;
    t.count <- 0
end

(* ===================================================================== *)
(* Hierarchical performance-counter registry.

   The measure-then-remap loop (paper §5) and every experiment in the
   harness need a uniform way to enumerate, dump, diff and test the
   simulator's counters. Groups form a dot-separated hierarchy
   ("cache.l1.hits"); leaves are plain counters (one mutable int, so
   incrementing in a hot loop costs a single store), histograms
   (count/sum/min/max — the hardware tallies exactly these), or probes
   (closures sampled at snapshot time, used to expose pre-existing model
   state without touching its hot paths). *)

type value = VInt of int | VFloat of float

type hist = { hcount : int; hsum : float; hmin : float; hmax : float }

let hist_mean h = if h.hcount = 0 then 0.0 else h.hsum /. float_of_int h.hcount

type counter = { mutable c : int }

type histogram = {
  mutable n : int;
  mutable sum : float;
  mutable mn : float;
  mutable mx : float;
}

type node =
  | Counter of counter
  | Histogram of histogram
  | Probe of (unit -> value)
  | Group of group

and group = {
  gname : string; (* full dotted path; "" for the root *)
  order : string list ref; (* child names in registration order *)
  children : (string, node) Hashtbl.t;
}

type registry = group

let valid_name name =
  String.length name > 0
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '-')
       name

let make_group gname = { gname; order = ref []; children = Hashtbl.create 8 }

let registry () = make_group ""

let register (g : group) name node =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Stats: invalid stat name %S" name);
  if Hashtbl.mem g.children name then
    invalid_arg
      (Printf.sprintf "Stats: duplicate stat name %S in group %S" name g.gname);
  Hashtbl.add g.children name node;
  g.order := name :: !(g.order)

let child_path g name = if g.gname = "" then name else g.gname ^ "." ^ name

let group (r : registry) name =
  let g = make_group name in
  register r name (Group g);
  g

let subgroup (parent : group) name =
  let g = make_group (child_path parent name) in
  register parent name (Group g);
  g

let counter ?desc (g : group) name =
  ignore desc;
  let c = { c = 0 } in
  register g name (Counter c);
  c

let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let set c n = c.c <- n
let get c = c.c

let histogram ?desc (g : group) name =
  ignore desc;
  let h = { n = 0; sum = 0.0; mn = infinity; mx = neg_infinity } in
  register g name (Histogram h);
  h

let observe h x =
  h.n <- h.n + 1;
  h.sum <- h.sum +. x;
  if x < h.mn then h.mn <- x;
  if x > h.mx then h.mx <- x

let probe ?desc (g : group) name f =
  ignore desc;
  register g name (Probe f)

let derived ?desc g name f = probe ?desc g name (fun () -> VFloat (f ()))
let int_probe ?desc g name f = probe ?desc g name (fun () -> VInt (f ()))

let find_histogram (g : group) name =
  match Hashtbl.find_opt g.children name with
  | Some (Histogram h) -> Some h
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Snapshots: immutable, ordered (path, entry) lists. *)

type entry = Value of value | Hist of hist

type snapshot = (string * entry) list

let empty : snapshot = []

let snapshot (r : registry) : snapshot =
  let acc = ref [] in
  let rec walk prefix (g : group) =
    List.iter
      (fun name ->
        let path = if prefix = "" then name else prefix ^ "." ^ name in
        match Hashtbl.find g.children name with
        | Counter c -> acc := (path, Value (VInt c.c)) :: !acc
        | Histogram h ->
          acc := (path, Hist { hcount = h.n; hsum = h.sum; hmin = h.mn; hmax = h.mx }) :: !acc
        | Probe f -> acc := (path, Value (f ())) :: !acc
        | Group child -> walk path child)
      (List.rev !(g.order))
  in
  walk "" r;
  List.rev !acc

let to_assoc (s : snapshot) = s
let names (s : snapshot) = List.map fst s
let find (s : snapshot) path =
  match List.assoc_opt path s with Some (Value v) -> Some v | _ -> None

let find_int (s : snapshot) path =
  match find s path with
  | Some (VInt i) -> Some i
  | Some (VFloat _) | None -> None

let find_hist (s : snapshot) path =
  match List.assoc_opt path s with Some (Hist h) -> Some h | _ -> None

let hists_under (s : snapshot) prefix =
  let p = prefix ^ "." in
  let plen = String.length p in
  List.filter_map
    (fun (path, e) ->
      match e with
      | Hist h when String.length path > plen && String.sub path 0 plen = p ->
        Some (String.sub path plen (String.length path - plen), h)
      | _ -> None)
    s

(* ------------------------------------------------------------------ *)
(* Dumpers *)

let value_to_json = function VInt i -> Json.Int i | VFloat f -> Json.Float f

(* A histogram object is recognized on parse by carrying exactly these
   keys; group objects never collide because stat names are registered. *)
let hist_to_json h =
  Json.Assoc
    [
      ("count", Json.Int h.hcount);
      ("sum", Json.Float h.hsum);
      ("min", Json.Float (if h.hcount = 0 then 0.0 else h.hmin));
      ("max", Json.Float (if h.hcount = 0 then 0.0 else h.hmax));
    ]

let to_json (s : snapshot) : Json.t =
  (* Rebuild the nesting from the dotted paths; entries arrive in
     registration order, which we preserve. *)
  let rec insert fields segments entry =
    match segments with
    | [] -> fields
    | [ leaf ] ->
      let v = match entry with Value v -> value_to_json v | Hist h -> hist_to_json h in
      fields @ [ (leaf, v) ]
    | seg :: rest ->
      let nested, others =
        match List.assoc_opt seg fields with
        | Some (Json.Assoc inner) -> (inner, List.remove_assoc seg fields)
        | _ -> ([], fields)
      in
      let updated = Json.Assoc (insert nested rest entry) in
      if List.mem_assoc seg fields then
        List.map (fun (k, v) -> if k = seg then (k, updated) else (k, v)) fields
      else others @ [ (seg, updated) ]
  in
  Json.Assoc
    (List.fold_left
       (fun fields (path, entry) ->
         insert fields (String.split_on_char '.' path) entry)
       [] s)

let of_json (j : Json.t) : (snapshot, string) result =
  let is_hist fields =
    List.length fields = 4
    && List.for_all (fun k -> List.mem_assoc k fields) [ "count"; "sum"; "min"; "max" ]
  in
  let num name fields =
    match List.assoc_opt name fields with
    | Some (Json.Int i) -> Ok (float_of_int i)
    | Some (Json.Float f) -> Ok f
    | _ -> Error (Printf.sprintf "histogram field %s is not a number" name)
  in
  let ( let* ) = Result.bind in
  let rec walk prefix j acc =
    match j with
    | Json.Assoc fields when is_hist fields && prefix <> "" ->
      let* c = num "count" fields in
      let* s = num "sum" fields in
      let* mn = num "min" fields in
      let* mx = num "max" fields in
      Ok ((prefix, Hist { hcount = int_of_float c; hsum = s; hmin = mn; hmax = mx }) :: acc)
    | Json.Assoc fields ->
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          walk (if prefix = "" then k else prefix ^ "." ^ k) v acc)
        (Ok acc) fields
    | Json.Int i -> Ok ((prefix, Value (VInt i)) :: acc)
    | Json.Float f -> Ok ((prefix, Value (VFloat f)) :: acc)
    | Json.Null -> Ok ((prefix, Value (VFloat Float.nan)) :: acc)
    | Json.Bool _ | Json.String _ | Json.List _ ->
      Error (Printf.sprintf "unexpected JSON at %S" prefix)
  in
  Result.map List.rev (walk "" j [])

let to_flat_text (s : snapshot) =
  let buf = Buffer.create 512 in
  List.iter
    (fun (path, entry) ->
      match entry with
      | Value (VInt i) -> Buffer.add_string buf (Printf.sprintf "%-42s %d\n" path i)
      | Value (VFloat f) -> Buffer.add_string buf (Printf.sprintf "%-42s %.4f\n" path f)
      | Hist h ->
        Buffer.add_string buf
          (Printf.sprintf "%-42s count=%d sum=%.2f mean=%.4f min=%.2f max=%.2f\n" path
             h.hcount h.hsum (hist_mean h)
             (if h.hcount = 0 then 0.0 else h.hmin)
             (if h.hcount = 0 then 0.0 else h.hmax)))
    s;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Diff & invariants *)

type delta = { path : string; before : float; after : float }

let scalar = function
  | Value (VInt i) -> float_of_int i
  | Value (VFloat f) -> f
  | Hist h -> h.hsum

let diff (before : snapshot) (after : snapshot) : delta list =
  (* Every path present in either snapshot whose scalar projection changed;
     histograms project to their sample sum, with the count reported as a
     synthetic ".count" path. *)
  let expand s =
    List.concat_map
      (fun (path, e) ->
        match e with
        | Hist h -> [ (path, h.hsum); (path ^ ".count", float_of_int h.hcount) ]
        | v -> [ (path, scalar v) ])
      s
  in
  let b = expand before and a = expand after in
  let paths =
    List.sort_uniq compare (List.map fst b @ List.map fst a)
  in
  List.filter_map
    (fun path ->
      let v0 = Option.value (List.assoc_opt path b) ~default:0.0 in
      let v1 = Option.value (List.assoc_opt path a) ~default:0.0 in
      if v0 = v1 then None else Some { path; before = v0; after = v1 })
    paths

let check_invariants (s : snapshot) =
  let problems =
    List.filter_map
      (fun (path, e) ->
        match e with
        | Value (VInt i) when i < 0 ->
          Some (Printf.sprintf "%s: negative counter (%d)" path i)
        | Value (VFloat f) when Float.is_nan f ->
          Some (Printf.sprintf "%s: NaN" path)
        | Hist h when h.hcount < 0 ->
          Some (Printf.sprintf "%s: negative sample count" path)
        | Hist h when h.hcount > 0 && h.hmin > h.hmax ->
          Some (Printf.sprintf "%s: min %.3f > max %.3f" path h.hmin h.hmax)
        | _ -> None)
      s
  in
  if problems = [] then Ok () else Error problems
