type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write buf ~indent ~level t =
  let pad n = if indent > 0 then Buffer.add_string buf (String.make (n * indent) ' ') in
  let nl () = if indent > 0 then Buffer.add_char buf '\n' in
  match t with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_nan f || Float.abs f = Float.infinity then
      (* NaN / infinities are not valid JSON; emit null. *)
      Buffer.add_string buf "null"
    else Buffer.add_string buf (float_literal f)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape_string s);
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    nl ();
    List.iteri
      (fun i item ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          nl ()
        end;
        pad (level + 1);
        write buf ~indent ~level:(level + 1) item)
      items;
    nl ();
    pad level;
    Buffer.add_char buf ']'
  | Assoc [] -> Buffer.add_string buf "{}"
  | Assoc fields ->
    Buffer.add_char buf '{';
    nl ();
    List.iteri
      (fun i (k, v) ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          nl ()
        end;
        pad (level + 1);
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape_string k);
        Buffer.add_string buf (if indent > 0 then "\": " else "\":");
        write buf ~indent ~level:(level + 1) v)
      fields;
    nl ();
    pad level;
    Buffer.add_char buf '}'

let to_string ?(indent = 2) t =
  let buf = Buffer.create 1024 in
  write buf ~indent ~level:0 t;
  if indent > 0 then Buffer.add_char buf '\n';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing *)

exception Parse_error of string

type parser_state = { src : string; mutable pos : int }

let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let advance p = p.pos <- p.pos + 1

let fail p msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg p.pos))

let skip_ws p =
  let rec go () =
    match peek p with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance p;
      go ()
    | _ -> ()
  in
  go ()

let expect p c =
  match peek p with
  | Some c' when c' = c -> advance p
  | _ -> fail p (Printf.sprintf "expected %c" c)

let parse_literal p lit value =
  if
    p.pos + String.length lit <= String.length p.src
    && String.sub p.src p.pos (String.length lit) = lit
  then begin
    p.pos <- p.pos + String.length lit;
    value
  end
  else fail p ("expected " ^ lit)

let parse_string_body p =
  expect p '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek p with
    | None -> fail p "unterminated string"
    | Some '"' ->
      advance p;
      Buffer.contents buf
    | Some '\\' -> (
      advance p;
      match peek p with
      | Some '"' -> advance p; Buffer.add_char buf '"'; go ()
      | Some '\\' -> advance p; Buffer.add_char buf '\\'; go ()
      | Some '/' -> advance p; Buffer.add_char buf '/'; go ()
      | Some 'n' -> advance p; Buffer.add_char buf '\n'; go ()
      | Some 'r' -> advance p; Buffer.add_char buf '\r'; go ()
      | Some 't' -> advance p; Buffer.add_char buf '\t'; go ()
      | Some 'b' -> advance p; Buffer.add_char buf '\b'; go ()
      | Some 'f' -> advance p; Buffer.add_char buf '\012'; go ()
      | Some 'u' ->
        advance p;
        if p.pos + 4 > String.length p.src then fail p "bad \\u escape";
        let hex = String.sub p.src p.pos 4 in
        p.pos <- p.pos + 4;
        let code = int_of_string ("0x" ^ hex) in
        (* Only BMP codepoints; encode as UTF-8. *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end;
        go ()
      | _ -> fail p "bad escape")
    | Some c ->
      advance p;
      Buffer.add_char buf c;
      go ()
  in
  go ()

let parse_number p =
  let start = p.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek p with Some c -> is_num_char c | None -> false) do
    advance p
  done;
  let text = String.sub p.src start (p.pos - start) in
  if String.contains text '.' || String.contains text 'e' || String.contains text 'E'
  then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail p "bad number"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail p "bad number")

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> fail p "unexpected end of input"
  | Some 'n' -> parse_literal p "null" Null
  | Some 't' -> parse_literal p "true" (Bool true)
  | Some 'f' -> parse_literal p "false" (Bool false)
  | Some '"' -> String (parse_string_body p)
  | Some '[' ->
    advance p;
    skip_ws p;
    if peek p = Some ']' then begin
      advance p;
      List []
    end
    else begin
      let items = ref [ parse_value p ] in
      skip_ws p;
      while peek p = Some ',' do
        advance p;
        items := parse_value p :: !items;
        skip_ws p
      done;
      expect p ']';
      List (List.rev !items)
    end
  | Some '{' ->
    advance p;
    skip_ws p;
    if peek p = Some '}' then begin
      advance p;
      Assoc []
    end
    else begin
      let field () =
        skip_ws p;
        let k = parse_string_body p in
        skip_ws p;
        expect p ':';
        let v = parse_value p in
        (k, v)
      in
      let fields = ref [ field () ] in
      skip_ws p;
      while peek p = Some ',' do
        advance p;
        fields := field () :: !fields;
        skip_ws p
      done;
      expect p '}';
      Assoc (List.rev !fields)
    end
  | Some _ -> parse_number p

let of_string s =
  let p = { src = s; pos = 0 } in
  match parse_value p with
  | v ->
    skip_ws p;
    if p.pos <> String.length s then Error "trailing garbage after JSON value"
    else Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member key = function
  | Assoc fields -> List.assoc_opt key fields
  | _ -> None

let rec path keys t =
  match keys with
  | [] -> Some t
  | k :: rest -> ( match member k t with Some v -> path rest v | None -> None)

let to_int = function Int i -> Some i | Float f when Float.is_integer f -> Some (int_of_float f) | _ -> None
let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_assoc = function Assoc l -> Some l | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
