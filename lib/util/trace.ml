type span = {
  name : string;
  cat : string;
  ts : int;
  dur : int;
  pid : int;
  tid : int;
  meta : string option;
  args : (string * Json.t) list;
}

let span ?(pid = 0) ?(tid = 0) ?(args = []) ~cat ~ts ~dur name =
  { name; cat; ts; dur; pid; tid; meta = None; args }

let instant ?(pid = 0) ?(tid = 0) ?(args = []) ~cat ~ts name =
  { name; cat; ts; dur = 0; pid; tid; meta = None; args }

let process_name ~pid name =
  {
    name = "process_name";
    cat = "__metadata";
    ts = 0;
    dur = 0;
    pid;
    tid = 0;
    meta = Some name;
    args = [ ("name", Json.String name) ];
  }

let thread_name ~pid ~tid name =
  {
    name = "thread_name";
    cat = "__metadata";
    ts = 0;
    dur = 0;
    pid;
    tid;
    meta = Some name;
    args = [ ("name", Json.String name) ];
  }

let span_to_json s =
  let common =
    [
      ("name", Json.String s.name);
      ("cat", Json.String s.cat);
      ("pid", Json.Int s.pid);
      ("tid", Json.Int s.tid);
      ("ts", Json.Int s.ts);
    ]
  in
  let shape =
    match s.meta with
    | Some _ -> [ ("ph", Json.String "M") ]
    | None ->
      if s.dur > 0 then [ ("ph", Json.String "X"); ("dur", Json.Int s.dur) ]
      else [ ("ph", Json.String "i"); ("s", Json.String "t") ]
  in
  let args = if s.args = [] then [] else [ ("args", Json.Assoc s.args) ] in
  Json.Assoc (common @ shape @ args)

let to_chrome_json spans =
  Json.Assoc
    [
      ("traceEvents", Json.List (List.map span_to_json spans));
      ("displayTimeUnit", Json.String "ns");
    ]

let to_string spans = Json.to_string (to_chrome_json spans)
