type span = {
  name : string;
  cat : string;
  ts : int;
  dur : int;
  args : (string * Json.t) list;
}

let span ?(args = []) ~cat ~ts ~dur name = { name; cat; ts; dur; args }
let instant ?(args = []) ~cat ~ts name = { name; cat; ts; dur = 0; args }

let span_to_json s =
  let common =
    [
      ("name", Json.String s.name);
      ("cat", Json.String s.cat);
      ("pid", Json.Int 0);
      ("tid", Json.Int 0);
      ("ts", Json.Int s.ts);
    ]
  in
  let shape =
    if s.dur > 0 then [ ("ph", Json.String "X"); ("dur", Json.Int s.dur) ]
    else [ ("ph", Json.String "i"); ("s", Json.String "t") ]
  in
  let args = if s.args = [] then [] else [ ("args", Json.Assoc s.args) ] in
  Json.Assoc (common @ shape @ args)

let to_chrome_json spans =
  Json.Assoc
    [
      ("traceEvents", Json.List (List.map span_to_json spans));
      ("displayTimeUnit", Json.String "ns");
    ]

let to_string spans = Json.to_string (to_chrome_json spans)
