(** Fixed-size domain pool with futures, for the experiment harness.

    The evaluation decomposes into independent per-(kernel, configuration)
    measurement tasks whose results only need to be *assembled* in a fixed
    order. The pool runs the tasks on [jobs] worker domains (OCaml 5
    [Domain]s — real parallelism, no domainslib dependency) while
    {!await}/{!map} hand results back in submission order, so any experiment
    driven through the pool is bit-identical to its sequential run.

    [jobs = 1] bypasses domains entirely: tasks execute inline at submission
    time on the calling domain, in submission order — the exact sequential
    semantics, useful both as the determinism reference and under
    environments where spawning domains is undesirable.

    Tasks must not share mutable state unless they synchronize themselves;
    every harness task builds its own memory image, machine, hierarchy and
    stats registry, so this holds by construction there. *)

type t
(** A pool of worker domains and a FIFO task queue. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the pool size used when [?jobs]
    is omitted. *)

val create : ?jobs:int -> unit -> t
(** Spawn a pool of [max 1 jobs] workers ([jobs = 1] spawns none). The pool
    must be {!shutdown} (or created via {!with_pool}) or its domains leak
    until exit. Raises [Invalid_argument] on [jobs < 1]. *)

val jobs : t -> int

type 'a future
(** The pending result of a submitted task. *)

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task. With [jobs = 1] the task runs before [submit] returns.
    Raises [Invalid_argument] if the pool is already shut down. *)

val await : 'a future -> 'a
(** Block until the task finishes; returns its value or re-raises the
    exception it raised (with its backtrace). Idempotent. *)

val try_await : 'a future -> 'a option
(** Non-blocking poll: [Some v] if the task has finished, [None] while it
    is still pending. Re-raises like {!await} if the task failed. *)

val await_timeout : 'a future -> float -> 'a option
(** [await_timeout fut secs] waits at most [secs] (wall-clock) seconds for
    the task: [Some v] when it settles in time, [None] on timeout — the
    task itself keeps running and a later {!await} still yields its result.
    Re-raises like {!await} if the task failed within the window. A
    non-positive [secs] is a {!try_await} — the initial poll always runs,
    so an already-settled future yields its result (or re-raises) even
    with a zero window; [None] on [secs <= 0.0] means strictly "still
    pending now". Waiting polls with exponential sleeps (50us up to 5ms):
    a task settling anywhere inside the window is picked up by the next
    poll step (within ~5ms, never lost to a missed wakeup), and a
    dispatcher enforcing deadlines never blocks forever on a wedged
    worker. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Submit [f x] for every element, then await them all; the result list is
    in input order regardless of completion order. If several tasks raise,
    the earliest (by submission order) exception wins. *)

val shutdown : t -> unit
(** Drain the queue, wait for in-flight tasks, and join the workers.
    Idempotent. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run the body, always [shutdown]. *)

val run : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot [with_pool] + [map]. *)
