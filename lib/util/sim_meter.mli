(** Process-wide simulated-cycle meter.

    Simulation backends (the accelerator engine, the CPU core model) add
    each completed window's cycle count; the bench harness reads deltas
    around an experiment to report `simulated_cycles` and
    `cycles_per_second`. Totals are exact, monotonic, and independent of
    worker parallelism, so CI can equality-gate on them. *)

val add : int -> unit
(** Record [cycles] simulated cycles (non-positive values are ignored). *)

val read : unit -> int
(** Total simulated cycles recorded by this process so far. *)
