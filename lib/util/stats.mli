(** Small statistics helpers shared by the timing models and the experiment
    harness. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val geomean : float list -> float
(** Geometric mean; the paper reports cross-benchmark averages of speedup
    ratios, for which the geometric mean is the appropriate aggregate.
    0 on the empty list; all inputs must be positive. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,1\]], nearest-rank on the sorted
    list. Raises [Invalid_argument] on the empty list. *)

val clamp : lo:float -> hi:float -> float -> float
(** Clamp a float into [\[lo, hi\]]. *)

val iclamp : lo:int -> hi:int -> int -> int
(** Clamp an int into [\[lo, hi\]]. *)

val div_ceil : int -> int -> int
(** [div_ceil a b] is ceil(a / b) for positive [b]. *)

(** Online accumulator for mean over a stream of samples, used by the
    per-instruction latency counters (the hardware tallies sum and count). *)
module Running : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val sum : t -> float

  val mean : t -> float
  (** 0 before any sample has been added. *)

  val mean_or : t -> float -> float
  (** [mean_or t default] is the mean, or [default] before any sample. *)

  val reset : t -> unit
end

(** {1 Hierarchical performance-counter registry}

    The uniform observability layer behind the measure-then-remap loop
    (paper §5): every timing model registers its counters under a named
    group, and the whole tree can be snapshotted, dumped to JSON or flat
    text, diffed, and checked for invariants. Hot-loop increments are a
    single mutable-field store. *)

type value = VInt of int | VFloat of float

type registry
type group
type counter
type histogram

val registry : unit -> registry

val group : registry -> string -> group
(** Top-level group. Raises [Invalid_argument] on a duplicate or invalid
    name (names are [[A-Za-z0-9_-]+]; dots separate hierarchy levels in
    paths only). *)

val subgroup : group -> string -> group

val counter : ?desc:string -> group -> string -> counter
(** Monotone integer counter. Raises [Invalid_argument] on duplicates. *)

val incr : counter -> unit
val add : counter -> int -> unit

val set : counter -> int -> unit
(** For gauges mirrored from external state; prefer {!probe} when the
    state already lives elsewhere. *)

val get : counter -> int

val histogram : ?desc:string -> group -> string -> histogram
(** Sample accumulator tallying count/sum/min/max — the same quartet the
    paper's hardware counters expose per operation. *)

val observe : histogram -> float -> unit

val find_histogram : group -> string -> histogram option
(** Lazy-creation helper for dynamically named stats (e.g. per-edge). *)

val probe : ?desc:string -> group -> string -> (unit -> value) -> unit
(** Register a closure sampled at {!snapshot} time — exposes pre-existing
    mutable model state with zero hot-path cost. *)

val derived : ?desc:string -> group -> string -> (unit -> float) -> unit
(** Float probe (ratios such as IPC or hit rates). *)

val int_probe : ?desc:string -> group -> string -> (unit -> int) -> unit

(** {2 Snapshots} *)

type hist = { hcount : int; hsum : float; hmin : float; hmax : float }

val hist_mean : hist -> float

type entry = Value of value | Hist of hist

type snapshot
(** Immutable dump of the registry: dotted paths in registration order. *)

val empty : snapshot
val snapshot : registry -> snapshot
val to_assoc : snapshot -> (string * entry) list
val names : snapshot -> string list
val find : snapshot -> string -> value option
val find_int : snapshot -> string -> int option
val find_hist : snapshot -> string -> hist option

val hists_under : snapshot -> string -> (string * hist) list
(** All histograms whose path starts with [prefix ^ "."], keyed by the
    remainder of the path — how the optimizer enumerates per-node and
    per-edge measurements. *)

val to_json : snapshot -> Json.t
(** Nested objects mirroring the group hierarchy; histograms become
    [{count, sum, min, max}] objects. *)

val of_json : Json.t -> (snapshot, string) result
(** Inverse of {!to_json} (up to probe/counter distinction — every scalar
    parses as a plain value). *)

val to_flat_text : snapshot -> string

(** {2 Diff and invariants} *)

type delta = { path : string; before : float; after : float }

val diff : snapshot -> snapshot -> delta list
(** Changed paths only. Histograms contribute their sample sum under the
    histogram's own path and the count under [path ^ ".count"]. *)

val check_invariants : snapshot -> (unit, string list) result
(** No negative counters, no NaN probes, histogram min <= max. *)
