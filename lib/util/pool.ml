let default_jobs () = Domain.recommended_domain_count ()

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  f_lock : Mutex.t;
  f_done : Condition.t;
  mutable state : 'a state;
}

type t = {
  jobs : int;
  lock : Mutex.t;
  wake : Condition.t;              (* queue non-empty or shutting down *)
  queue : (unit -> unit) Queue.t;  (* erased tasks; each settles its future *)
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let jobs t = t.jobs

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let worker_loop t =
  let rec next () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.closed do
      Condition.wait t.wake t.lock
    done;
    (* Even when closing, drain what was already submitted so every
       outstanding future settles. *)
    match Queue.take_opt t.queue with
    | Some task ->
      Mutex.unlock t.lock;
      task ();
      next ()
    | None ->
      Mutex.unlock t.lock
  in
  next ()

let create ?jobs () =
  let jobs = match jobs with None -> default_jobs () | Some j -> j in
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      lock = Mutex.create ();
      wake = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [];
    }
  in
  if jobs > 1 then
    t.workers <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let settle fut outcome =
  locked fut.f_lock (fun () ->
      fut.state <- outcome;
      Condition.broadcast fut.f_done)

let run_task fut f =
  let outcome =
    match f () with
    | v -> Done v
    | exception e -> Failed (e, Printexc.get_raw_backtrace ())
  in
  settle fut outcome

let submit t f =
  let fut = { f_lock = Mutex.create (); f_done = Condition.create (); state = Pending } in
  if t.jobs = 1 then begin
    if t.closed then invalid_arg "Pool.submit: pool is shut down";
    run_task fut f
  end
  else
    locked t.lock (fun () ->
        if t.closed then invalid_arg "Pool.submit: pool is shut down";
        Queue.add (fun () -> run_task fut f) t.queue;
        Condition.signal t.wake);
  fut

let is_pending fut = match fut.state with Pending -> true | Done _ | Failed _ -> false

let await fut =
  locked fut.f_lock (fun () ->
      while is_pending fut do
        Condition.wait fut.f_done fut.f_lock
      done;
      match fut.state with
      | Done v -> v
      | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
      | Pending -> assert false)

let try_await fut =
  locked fut.f_lock (fun () ->
      match fut.state with
      | Pending -> None
      | Done v -> Some v
      | Failed (e, bt) -> Printexc.raise_with_backtrace e bt)

let await_timeout fut secs =
  match try_await fut with
  | Some _ as r -> r
  | None ->
    if secs <= 0.0 then None
    else begin
      (* Condition.wait has no timed variant in the stdlib, so bounded
         waiting polls with exponentially growing sleeps: responsive at
         millisecond deadlines, negligible load while parked at the cap. *)
      let deadline = Unix.gettimeofday () +. secs in
      let rec poll sleep =
        match try_await fut with
        | Some _ as r -> r
        | None ->
          let remaining = deadline -. Unix.gettimeofday () in
          if remaining <= 0.0 then None
          else begin
            Unix.sleepf (Float.min sleep remaining);
            poll (Float.min (sleep *. 2.0) 5e-3)
          end
      in
      poll 5e-5
    end

let map t f xs = List.map await (List.map (fun x -> submit t (fun () -> f x)) xs)

let shutdown t =
  let ws =
    locked t.lock (fun () ->
        t.closed <- true;
        Condition.broadcast t.wake;
        let ws = t.workers in
        t.workers <- [];
        ws)
  in
  List.iter Domain.join ws

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let run ?jobs f xs = with_pool ?jobs (fun t -> map t f xs)
