let ratio = Float.pow 2.0 0.25
let floor_value = 1e-3
let log_ratio = Float.log ratio

type sub = {
  mutable s_count : int;
  mutable s_sum : float;
  mutable s_min : float; (* infinity when empty *)
  mutable s_max : float; (* neg_infinity when empty *)
  b : int array;
}

type t = {
  n_buckets : int;
  n_windows : int;
  subs : sub array;
  mutable cursor : int; (* subs.(cursor) is the current sub-window *)
  mutable t_count : int;
  mutable t_sum : float;
  mutable t_max : float;
}

let fresh_sub buckets =
  {
    s_count = 0;
    s_sum = 0.0;
    s_min = Float.infinity;
    s_max = Float.neg_infinity;
    b = Array.make buckets 0;
  }

let clear_sub s =
  s.s_count <- 0;
  s.s_sum <- 0.0;
  s.s_min <- Float.infinity;
  s.s_max <- Float.neg_infinity;
  Array.fill s.b 0 (Array.length s.b) 0

let create ?(buckets = 128) ?(windows = 8) () =
  if buckets < 1 then invalid_arg "Sketch.create: buckets must be >= 1";
  if windows < 1 then invalid_arg "Sketch.create: windows must be >= 1";
  {
    n_buckets = buckets;
    n_windows = windows;
    subs = Array.init windows (fun _ -> fresh_sub buckets);
    cursor = 0;
    t_count = 0;
    t_sum = 0.0;
    t_max = 0.0;
  }

let buckets t = t.n_buckets
let windows t = t.n_windows

(* Bucket 0 covers (-inf, floor]; bucket i covers
   (floor * r^(i-1), floor * r^i]. The last bucket absorbs everything
   above the geometric range. *)
let bucket_of t v =
  if not (Float.is_finite v) || v <= floor_value then 0
  else
    let i =
      int_of_float (Float.ceil (Float.log (v /. floor_value) /. log_ratio))
    in
    if i < 1 then 1 else if i >= t.n_buckets then t.n_buckets - 1 else i

let upper_bound i =
  if i = 0 then floor_value else floor_value *. Float.pow ratio (float_of_int i)

let observe t v =
  let v = if Float.is_finite v && v > 0.0 then v else 0.0 in
  let s = t.subs.(t.cursor) in
  s.b.(bucket_of t v) <- s.b.(bucket_of t v) + 1;
  s.s_count <- s.s_count + 1;
  s.s_sum <- s.s_sum +. v;
  if v < s.s_min then s.s_min <- v;
  if v > s.s_max then s.s_max <- v;
  t.t_count <- t.t_count + 1;
  t.t_sum <- t.t_sum +. v;
  if v > t.t_max then t.t_max <- v

let advance t =
  t.cursor <- (t.cursor + 1) mod t.n_windows;
  clear_sub t.subs.(t.cursor)

(* The sub-window of age [a]: 0 is current, [n_windows - 1] the oldest. *)
let sub_of_age t a = t.subs.((t.cursor - a + t.n_windows) mod t.n_windows)

let window_count t =
  Array.fold_left (fun acc s -> acc + s.s_count) 0 t.subs

let window_sum t = Array.fold_left (fun acc s -> acc +. s.s_sum) 0.0 t.subs

let window_max t =
  let m = Array.fold_left (fun acc s -> Float.max acc s.s_max) Float.neg_infinity t.subs in
  if Float.is_finite m then m else 0.0

let quantile t q =
  if not (q >= 0.0 && q <= 1.0) then
    invalid_arg "Sketch.quantile: q must be in [0,1]";
  let count = window_count t in
  if count = 0 then 0.0
  else begin
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int count))) in
    let cum = ref 0 in
    let result = ref (window_max t) in
    (try
       for i = 0 to t.n_buckets - 1 do
         Array.iter (fun s -> cum := !cum + s.b.(i)) t.subs;
         if !cum >= rank then begin
           result := Float.min (upper_bound i) (window_max t);
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let total_count t = t.t_count
let total_sum t = t.t_sum
let life_max t = t.t_max

let merge a b =
  if a.n_buckets <> b.n_buckets || a.n_windows <> b.n_windows then
    invalid_arg "Sketch.merge: geometry mismatch";
  let r = create ~buckets:a.n_buckets ~windows:a.n_windows () in
  for age = 0 to a.n_windows - 1 do
    let dst = sub_of_age r age in
    List.iter
      (fun src ->
        let s = sub_of_age src age in
        dst.s_count <- dst.s_count + s.s_count;
        dst.s_sum <- dst.s_sum +. s.s_sum;
        if s.s_min < dst.s_min then dst.s_min <- s.s_min;
        if s.s_max > dst.s_max then dst.s_max <- s.s_max;
        Array.iteri (fun i c -> dst.b.(i) <- dst.b.(i) + c) s.b)
      [ a; b ]
  done;
  r.t_count <- a.t_count + b.t_count;
  r.t_sum <- a.t_sum +. b.t_sum;
  r.t_max <- Float.max a.t_max b.t_max;
  r

(* ---------------- JSON ---------------- *)

let sub_to_json s =
  let sparse = ref [] in
  Array.iteri
    (fun i c -> if c > 0 then sparse := Json.List [ Json.Int i; Json.Int c ] :: !sparse)
    s.b;
  Json.Assoc
    (("count", Json.Int s.s_count)
     :: ("sum", Json.Float s.s_sum)
     :: (if s.s_count > 0 then
           [ ("min", Json.Float s.s_min); ("max", Json.Float s.s_max) ]
         else [])
    @ [ ("b", Json.List (List.rev !sparse)) ])

let to_json t =
  Json.Assoc
    [
      ("schema", Json.String "mesa-sketch-v1");
      ("buckets", Json.Int t.n_buckets);
      ("windows", Json.Int t.n_windows);
      ("total_count", Json.Int t.t_count);
      ("total_sum", Json.Float t.t_sum);
      ("max", Json.Float t.t_max);
      ( "subs",
        Json.List
          (List.init t.n_windows (fun age -> sub_to_json (sub_of_age t age))) );
    ]

let ( let* ) = Result.bind

let j_int name j =
  match Option.bind (Json.member name j) Json.to_int with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "sketch: missing int %S" name)

let j_float name j =
  match Option.bind (Json.member name j) Json.to_float with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "sketch: missing float %S" name)

let sub_of_json buckets j =
  let* count = j_int "count" j in
  let* sum = j_float "sum" j in
  let s = fresh_sub buckets in
  s.s_count <- count;
  s.s_sum <- sum;
  if count > 0 then begin
    (match Option.bind (Json.member "min" j) Json.to_float with
    | Some v -> s.s_min <- v
    | None -> ());
    match Option.bind (Json.member "max" j) Json.to_float with
    | Some v -> s.s_max <- v
    | None -> ()
  end;
  match Option.bind (Json.member "b" j) Json.to_list with
  | None -> Error "sketch: missing buckets"
  | Some entries ->
    let rec fill = function
      | [] -> Ok s
      | Json.List [ i; c ] :: rest -> (
        match (Json.to_int i, Json.to_int c) with
        | Some i, Some c when i >= 0 && i < buckets ->
          s.b.(i) <- c;
          fill rest
        | _ -> Error "sketch: bad bucket entry")
      | _ -> Error "sketch: bad bucket entry"
    in
    fill entries

let of_json j =
  match Json.member "schema" j with
  | Some (Json.String "mesa-sketch-v1") ->
    let* nb = j_int "buckets" j in
    let* nw = j_int "windows" j in
    if nb < 1 || nw < 1 then Error "sketch: bad geometry"
    else
      let* tc = j_int "total_count" j in
      let* ts = j_float "total_sum" j in
      let* tm = j_float "max" j in
      let* subs =
        match Option.bind (Json.member "subs" j) Json.to_list with
        | Some l when List.length l = nw ->
          List.fold_left
            (fun acc sj ->
              let* acc = acc in
              let* s = sub_of_json nb sj in
              Ok (s :: acc))
            (Ok []) l
          |> Result.map List.rev
        | _ -> Error "sketch: wrong sub-window count"
      in
      let t = create ~buckets:nb ~windows:nw () in
      List.iteri (fun age s -> t.subs.((t.cursor - age + nw) mod nw) <- s) subs;
      t.t_count <- tc;
      t.t_sum <- ts;
      t.t_max <- tm;
      Ok t
  | _ -> Error "sketch: not a mesa-sketch-v1 object"

(* ---------------- windowed rate counter ---------------- *)

module Rate = struct
  type t = { ring : int array; mutable cursor : int; mutable total : int }

  let create ?(windows = 8) () =
    if windows < 1 then invalid_arg "Sketch.Rate.create: windows must be >= 1";
    { ring = Array.make windows 0; cursor = 0; total = 0 }

  let add t n =
    t.ring.(t.cursor) <- t.ring.(t.cursor) + n;
    t.total <- t.total + n

  let incr t = add t 1

  let advance t =
    t.cursor <- (t.cursor + 1) mod Array.length t.ring;
    t.ring.(t.cursor) <- 0

  let window t = Array.fold_left ( + ) 0 t.ring
  let total t = t.total
end
