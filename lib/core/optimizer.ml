let improvement_threshold = 0.05

(* Counter readouts come in as the engine window's stats snapshot: per-node
   firing histograms under "node.<i>.latency" and per-edge transfer
   histograms under "edge.<i>.<j>". The histogram mean over the window is
   exactly the running mean the old per-window accumulators reported. *)
let absorb model (res : Engine.result) =
  let m = res.Engine.measured in
  let n = Dfg.node_count (Perf_model.graph model) in
  for i = 0 to n - 1 do
    match Stats.find_hist m (Printf.sprintf "node.%d.latency" i) with
    | Some h when h.Stats.hcount > 0 ->
      let lat = Stats.hist_mean h in
      if lat > 0.0 then Perf_model.observe_op model i lat
    | Some _ | None -> ()
  done;
  List.iter
    (fun (rest, h) ->
      match String.split_on_char '.' rest with
      | [ i; j ] when h.Stats.hcount > 0 ->
        (match (int_of_string_opt i, int_of_string_opt j) with
        | Some i, Some j -> Perf_model.observe_transfer model i j (Stats.hist_mean h)
        | _ -> ())
      | _ -> ())
    (Stats.hists_under m "edge")

type outcome =
  | Keep of float
  | Adopt of { config : Accel_config.t; latency : float; previous : float }

let restore_estimates model placement =
  List.iter
    (fun (i, j, _) ->
      Perf_model.set_transfer_estimate model i j (Placement.transfer_f placement i j))
    (Dfg.edges (Perf_model.graph model))

let step ~grid ~kind ~mapper ~model ~(current : Accel_config.t) =
  (* Compare both placements under the same analytic transfer model (with
     measured operation latencies): measured transfer samples embed the old
     placement's contention, which would bias the comparison toward any
     remap. *)
  restore_estimates model current.Accel_config.placement;
  let current_latency = Perf_model.iteration_latency model in
  match Mapper.map ~config:mapper ~grid ~kind model with
  | Error _ ->
    restore_estimates model current.Accel_config.placement;
    Keep current_latency
  | Ok placement ->
    let candidate_latency = Perf_model.iteration_latency model in
    if candidate_latency < current_latency *. (1.0 -. improvement_threshold) then
      let config = { current with Accel_config.placement } in
      Adopt { config; latency = candidate_latency; previous = current_latency }
    else begin
      restore_estimates model current.Accel_config.placement;
      Keep current_latency
    end
