(** The MESA controller (Figures 1, 7): transparent acceleration of a
    program running on one CPU core.

    The controller interprets the program (architectural reference) while
    feeding two consumers: the OoO timing model, which accounts CPU cycles,
    and the loop detector. When a region passes C1-C3, MESA translates it
    (LDFG, mapping, configuration) *while the CPU keeps executing* — the
    translation latency only delays the offload point, it does not stall
    the core. At the first iteration boundary after the configuration is
    ready, control transfers to the fabric; the engine runs the loop to
    completion (optionally in profiling windows with iterative
    reconfiguration) and hands back the architectural state, and the CPU
    resumes at the loop exit.

    Wall-clock accounting:
    [total = cpu_cycles + accel_cycles + offload transfers + reconfiguration
    stalls]. Translation overlaps the CPU and is tracked separately as
    [mesa_busy_cycles] for the energy model. *)

type options = {
  grid : Grid.t;
  kind : Interconnect.kind;
  detector : Loop_detector.config;
  mapper : Mapper.config;
  cpu : Ooo_model.config;
  optimize : bool;         (** memory + loop-level optimizations (tiling,
                               pipelining, forwarding, ...) *)
  iterative : bool;        (** runtime reoptimization from counters *)
  profile_chunk : int;     (** iterations per profiling window *)
  max_reopts : int;        (** reconfiguration budget per offload *)
  offload_overhead : int;  (** cycles to transfer architectural state each way *)
  max_steps : int;         (** interpreter safety budget *)
  engine_max_iterations : int;
      (** engine safety budget per offload; exceeding it aborts acceleration
          of the region with a distinct reason and CPU fallback *)
  watchdog_window : int;   (** iterations a corrupted window may spin before
                               the forward-progress watchdog cuts it off *)
  max_fault_retries : int; (** consecutive faulted windows tolerated before
                               the region is quarantined *)
  inject : Fault.spec option;
      (** fault schedule to arm for this run; [None] (the default) keeps
          every fault path cold and timing bit-identical to a build without
          the subsystem *)
  profile : bool;
      (** arm the cycle-attribution collector ({!Attribution.t}): every
          fabric cycle is charged to a stall-taxonomy bucket and the report
          carries the collector. Pure observation — cycles, memory and
          registers stay bit-identical to an unprofiled run *)
  tune : Accel_config.t -> Accel_config.t;
      (** hook applied to every freshly translated configuration — the
          ablation studies use it to strip individual optimizations *)
}

val default_options :
  ?grid:Grid.t -> ?optimize:bool -> ?iterative:bool -> ?inject:Fault.spec ->
  ?profile:bool -> unit -> options
(** M-128, mesh+NoC interconnect, optimizations and iterative mode on;
    profiling off. *)

(** Per-region outcome, for the evaluation tables. *)
type region_report = {
  entry : int;
  size : int;
  pragma : Program.pragma option;
  accepted : bool;
  reject_reason : string option;
      (** why the region was rejected — or, for an accepted region, why
          acceleration was later abandoned (iteration budget, quarantine) *)
  tiling : int;
  pipelined : bool;
  translation_cycles : int;
  accel_iterations : int;
  accel_cycles : int;
  reconfigurations : int;
  offload_count : int;
  faults_detected : int;
  fault_retries : int;
  fault_remaps : int;
  quarantines : int;
  critical_path : int list;
      (** node indices of the longest weighted dependence chain through the
          region's SDFG — measured weights when profiling or iterative mode
          supplied counter readouts, static estimates otherwise; [[]] for
          rejected regions *)
  critical_path_latency : float;
      (** modeled latency of one iteration along that path (Eq. 2) *)
  measured : Stats.snapshot option;
      (** the last clean engine window's measured per-node/per-edge
          snapshot (["node.<i>.latency"], ["node.<i>.amat"], ...) when
          [options.profile] was set — the input
          {!Cost_model.op_oracle_of_measured} and
          {!Cost_model.mem_oracle_of_measured} consume; [None] when
          profiling was off or no clean window completed *)
}

type report = {
  total_cycles : int;
  cpu_cycles : int;
  accel_cycles : int;
  overhead_cycles : int;   (** offload transfers + reconfiguration stalls *)
  mesa_busy_cycles : int;  (** translation work (overlapped; energy only) *)
  offloads : int;
  halt : Interp.halt;
  cpu_summary : Ooo_model.summary;
  activity : Activity.t;   (** accumulated fabric activity *)
  regions : region_report list;
  hier : Hierarchy.t;      (** the shared memory hierarchy, for energy *)
  stats : Stats.snapshot;
      (** end-of-run readout of every counter group: [cpu] (OoO model),
          [cache] (per-level hits/misses), [engine] (fabric activity,
          profiling windows), [controller] (offloads, reconfigurations,
          translation, cycle accounting), [faults] (injection and recovery —
          all-zero when no schedule is armed) and [regions.r<entry>] per accepted
          region *)
  timeline : Trace.span list;
      (** offload / translate / reconfigure / reject events on the
          wall-clock axis, ready for {!Trace.to_chrome_json} *)
  attribution : Attribution.t option;
      (** the cycle-attribution collector when [options.profile] was set:
          for every lane, bucket sums close exactly against
          [accel_cycles + overhead_cycles] *)
}

val run :
  ?options:options -> ?hier:Hierarchy.t -> ?stats:Stats.registry ->
  Program.t -> Machine.t -> report
(** Execute the program to completion under MESA. The machine ends in the
    same architectural state the plain interpreter would produce — the
    equivalence the test suite verifies.

    [stats] supplies the registry the run's counter groups are created in
    (fresh by default) — pass one to co-register caller-side counters under
    the same tree. *)

val speedup : baseline_cycles:int -> report -> float
