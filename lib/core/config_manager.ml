type cached = {
  region : Region.t;
  dfg : Dfg.t;
  model : Perf_model.t;
  mutable config : Accel_config.t;
  mutable reconfigurations : int;
  mutable offloads : int;
  mutable translation_cycles : int;
  mutable accel_iterations : int;
  mutable accel_cycles : int;
  (* Fault-recovery bookkeeping (all zero on a clean run). *)
  mutable faults_detected : int;
  mutable fault_retries : int;
  mutable fault_remaps : int;
  mutable quarantines : int;
  mutable quarantined_until : int;   (* offload ordinal; 0 = not quarantined *)
  mutable quarantine_backoff : int;
  mutable abort_reason : string option;
}

type t = { table : (int, cached) Hashtbl.t }

let create () = { table = Hashtbl.create 8 }
let find t entry = Hashtbl.find_opt t.table entry
let add t cached = Hashtbl.replace t.table cached.region.Region.entry cached
let entries t = Hashtbl.fold (fun _ c acc -> c :: acc) t.table []

let ldfg_build_cycles dfg = 8 + Dfg.node_count dfg

let translation_cycles mapper_cfg dfg config =
  ldfg_build_cycles dfg
  + Mapper.map_cycles mapper_cfg dfg
  + Accel_config.config_cycles config dfg

let cache_hit_cycles config dfg = 4 + Accel_config.config_cycles config dfg
