(** Task T2: the data-driven spatial mapping algorithm (Algorithm 1).

    Instructions are visited in LDFG (program) order. For each one, a
    candidate matrix — a fixed window positioned at the critical (highest
    expected latency) placed predecessor — is filtered by the free matrix
    and the operation capability mask, each surviving position is scored
    with the expected completion latency

      [expLatency = L_op + max(A_s1, A_s2)],

    and the instruction lands on the argmin. Ties prefer positions with
    more free neighbours (keeping room for future consumers). Memory
    instructions are assigned to load-store entries by the same cost rule.
    When the window filters to nothing, the mapper falls back to a global
    scan, modelling the secondary-interconnect fallback of §3.3.

    The mapper is data-driven: predecessor latencies [L_s] come from the
    {!Perf_model}, so a remap after measurement naturally steers hot
    producers and consumers together. As a side effect the mapper installs
    its analytic transfer estimates into the model for every edge. *)

type config = {
  window_rows : int;
  window_cols : int;
}

val default_config : config
(** The paper's fixed 4x8 candidate matrix. *)

val map :
  ?config:config ->
  grid:Grid.t ->
  kind:Interconnect.kind ->
  Perf_model.t ->
  (Placement.t, string) result
(** Place the model's graph onto [grid]. Fails when PEs or LS entries run
    out (a structural hazard; the controller then rejects the region). *)

(** Outcome of a {!refine} pass. [refined_cycles <= baseline_cycles] always:
    only strict engine-confirmed improvements are accepted. *)
type refinement = {
  placement : Placement.t;   (** best accepted placement (input if none) *)
  baseline_cycles : int;     (** engine cycles of the input placement *)
  refined_cycles : int;      (** engine cycles of [placement] *)
  rounds : int;              (** refinement rounds run *)
  proposed : int;            (** candidates scored by the model *)
  confirmed : int;           (** engine confirmations attempted *)
  accepted : int;            (** moves/swaps accepted *)
}

val refine :
  ?seed:int ->
  ?max_rounds:int ->
  ?beam:int ->
  predict:(Placement.t -> Cost_model.t) ->
  confirm:(Placement.t -> int option) ->
  dfg:Dfg.t ->
  baseline_cycles:int ->
  Placement.t ->
  refinement
(** Model-guided post-placement refinement. Each round estimates the
    current placement with [predict], proposes relocations and swaps for
    every node on the model's critical chain, keeps the legal candidates
    the model predicts to be faster, and engine-[confirm]s the top [beam]
    (default 4) of the model ranking; the first strictly faster confirmed
    candidate is adopted and the next round starts, for at most
    [max_rounds] (default 8) rounds. Ties in the model ranking are broken
    by a [seed]-keyed PRNG draw per candidate, making the pass a
    deterministic pure function of its inputs. [confirm] returning [None]
    (a rejected or failed run) just skips the candidate. *)

val map_cycles : config -> Dfg.t -> int
(** Hardware cost of running the imap FSM (Figure 8): a constant pipeline
    of stages per instruction plus a reduction tree over the candidate
    window. *)
