type decision = { tiling : int; pipelined : bool }

let no_opt = { tiling = 1; pipelined = false }

let max_tiling ~(grid : Grid.t) ~(dfg : Dfg.t) =
  let mem_nodes =
    Array.fold_left
      (fun acc nd -> if Isa.is_memory nd.Dfg.instr then acc + 1 else acc)
      0 dfg.Dfg.nodes
  in
  let pe_nodes = Dfg.node_count dfg - mem_nodes in
  let by_pe =
    if pe_nodes = 0 then max_int else Grid.healthy_pe_count grid / pe_nodes
  in
  let by_ls = if mem_nodes = 0 then max_int else grid.Grid.ls_entries / mem_nodes in
  (* FP ops can only use half the array; bound by FP capacity when present. *)
  let fp_nodes =
    Array.fold_left
      (fun acc nd -> if Isa.is_fp nd.Dfg.instr && not (Isa.is_memory nd.Dfg.instr) then acc + 1 else acc)
      0 dfg.Dfg.nodes
  in
  let by_fp =
    if fp_nodes = 0 then max_int else Grid.healthy_pe_count grid / 2 / fp_nodes
  in
  max 1 (min by_pe (min by_ls by_fp))

let decide ~grid ~dfg ~pragma =
  let tiling =
    match pragma with
    | Some (Program.Omp_parallel | Program.Omp_simd) -> max_tiling ~grid ~dfg
    | None -> 1
  in
  { tiling; pipelined = true }
