type config = { window_rows : int; window_cols : int }

let default_config = { window_rows = 4; window_cols = 8 }

let map ?(config = default_config) ~(grid : Grid.t) ~kind (model : Perf_model.t) =
  let dfg = Perf_model.graph model in
  let n = Dfg.node_count dfg in
  let free = Array.make_matrix grid.Grid.rows grid.Grid.cols true in
  let ls_free = Array.make grid.Grid.ls_entries true in
  let assign = Array.make n (Placement.Ls (-1)) in
  let expected = Array.make n 0.0 in
  (* Dependencies that anchor and price a position: everything the engine
     will wait on. *)
  let deps_of j =
    let nd = dfg.Dfg.nodes.(j) in
    let ds = ref [] in
    Array.iter (function Dfg.Node i -> ds := i :: !ds | Dfg.Reg_in _ -> ()) nd.Dfg.srcs;
    (match nd.Dfg.hidden with Some (Dfg.Node i) -> ds := i :: !ds | _ -> ());
    List.iter (fun (b, _) -> ds := b :: !ds) nd.Dfg.guards;
    Option.iter (fun s -> ds := s :: !ds) nd.Dfg.prev_store;
    !ds
  in
  let coord_of_loc = function
    | Placement.Pe c -> c
    | Placement.Ls e -> Interconnect.ls_coord grid e
  in
  let transfer_to j_coord i =
    float_of_int (Interconnect.latency grid kind (coord_of_loc assign.(i)) j_coord)
  in
  (* expLatency of placing node j at [c] (lines 10-12 of Algorithm 1). *)
  let exp_latency j c =
    let op = Perf_model.op_latency model j in
    let arrival =
      List.fold_left
        (fun acc i -> Float.max acc (expected.(i) +. transfer_to c i))
        0.0 (deps_of j)
    in
    op +. arrival
  in
  let free_neighbours (c : Grid.coord) =
    let count = ref 0 in
    List.iter
      (fun (dr, dc) ->
        let r = c.Grid.row + dr and col = c.Grid.col + dc in
        if r >= 0 && r < grid.Grid.rows && col >= 0 && col < grid.Grid.cols && free.(r).(col)
        then incr count)
      [ (-1, 0); (1, 0); (0, -1); (0, 1) ];
    !count
  in
  (* Anchor of the candidate window: the placed dependency with the largest
     expected latency (it necessarily lies on the incoming critical path);
     with no placed dependency, continue near the previous placement. *)
  let last_placed = ref (Grid.coord 0 0) in
  let anchor j =
    match deps_of j with
    | [] -> !last_placed
    | deps ->
      let crit =
        List.fold_left (fun a i -> if expected.(i) > expected.(a) then i else a)
          (List.hd deps) deps
      in
      coord_of_loc assign.(crit)
  in
  let pick_best j candidates =
    let best = ref None in
    List.iter
      (fun c ->
        let cost = exp_latency j c in
        let better =
          match !best with
          | None -> true
          | Some (_, bcost, bnbr) ->
            cost < bcost -. 1e-9
            || (Float.abs (cost -. bcost) <= 1e-9 && free_neighbours c > bnbr)
        in
        if better then best := Some (c, cost, free_neighbours c))
      candidates;
    !best
  in
  let window_candidates j a =
    let cls = Isa.op_class dfg.Dfg.nodes.(j).Dfg.instr in
    let r0 = a.Grid.row - ((config.window_rows - 1) / 2) in
    let c0 = a.Grid.col - (config.window_cols / 2) in
    let cands = ref [] in
    for dr = 0 to config.window_rows - 1 do
      for dc = 0 to config.window_cols - 1 do
        let c = Grid.coord (r0 + dr) (c0 + dc) in
        if
          Grid.in_bounds grid c
          && free.(c.Grid.row).(c.Grid.col)
          && Grid.supports grid c cls
        then cands := c :: !cands
      done
    done;
    !cands
  in
  let global_candidates j =
    let cls = Isa.op_class dfg.Dfg.nodes.(j).Dfg.instr in
    let cands = ref [] in
    Grid.iter_coords grid (fun c ->
        if free.(c.Grid.row).(c.Grid.col) && Grid.supports grid c cls then
          cands := c :: !cands);
    !cands
  in
  let place_compute j =
    let a = anchor j in
    let chosen =
      match pick_best j (window_candidates j a) with
      | Some _ as b -> b
      | None -> pick_best j (global_candidates j)
    in
    match chosen with
    | None -> Error (Printf.sprintf "no free compatible PE for node %d" j)
    | Some (c, cost, _) ->
      free.(c.Grid.row).(c.Grid.col) <- false;
      assign.(j) <- Placement.Pe c;
      expected.(j) <- cost;
      last_placed := c;
      Ok ()
  in
  let place_memory j =
    let best = ref None in
    for e = 0 to grid.Grid.ls_entries - 1 do
      if ls_free.(e) then begin
        let cost = exp_latency j (Interconnect.ls_coord grid e) in
        match !best with
        | Some (_, bcost) when bcost <= cost -> ()
        | Some _ | None -> best := Some (e, cost)
      end
    done;
    match !best with
    | None -> Error (Printf.sprintf "no free load-store entry for node %d" j)
    | Some (e, cost) ->
      ls_free.(e) <- false;
      assign.(j) <- Placement.Ls e;
      expected.(j) <- cost;
      Ok ()
  in
  let rec go j =
    if j = n then Ok ()
    else
      let res =
        if Isa.is_memory dfg.Dfg.nodes.(j).Dfg.instr then place_memory j
        else place_compute j
      in
      match res with Ok () -> go (j + 1) | Error _ as e -> e
  in
  match go 0 with
  | Error _ as e -> e
  | Ok () ->
    let placement = Placement.make grid kind assign in
    (* Feed the analytic edge estimates back into the performance model. *)
    List.iter
      (fun (i, j, _) ->
        Perf_model.set_transfer_estimate model i j (Placement.transfer_f placement i j))
      (Dfg.edges dfg);
    (match Placement.validate dfg placement with
    | Ok () -> Ok placement
    | Error e -> Error ("mapper produced invalid placement: " ^ e))

(* ------------------------------------------------------------------ *)
(* Model-guided post-placement refinement.

   Algorithm 1 is greedy in program order: a node placed early can end up
   far from a consumer it turns out to bottleneck. [refine] walks the cost
   model's critical chain and proposes relocations (to a free compatible
   location) and swaps (with another placed node) for each chain node,
   ranks every legal candidate by the model's predicted cycles, and asks
   the engine to confirm the most promising ones. Only a strict,
   engine-confirmed improvement is accepted, so the result can never be
   worse than the input placement — the model steers, the engine decides. *)

type refinement = {
  placement : Placement.t;
  baseline_cycles : int;
  refined_cycles : int;
  rounds : int;
  proposed : int;
  confirmed : int;
  accepted : int;
}

let refine ?(seed = 0) ?(max_rounds = 8) ?(beam = 4)
    ~(predict : Placement.t -> Cost_model.t)
    ~(confirm : Placement.t -> int option) ~(dfg : Dfg.t) ~baseline_cycles
    (placement : Placement.t) =
  let grid = placement.Placement.grid in
  let kind = placement.Placement.kind in
  let n = Dfg.node_count dfg in
  let cls_of j = Isa.op_class dfg.Dfg.nodes.(j).Dfg.instr in
  (* Deterministic seeded tie-break for equal model scores: a per-candidate
     draw from a PRNG keyed on the seed and the candidate's identity, so
     the ranking is a pure function of (seed, candidate set) and immune to
     generation order. *)
  let tie descr = Prng.int (Prng.create (seed lxor Hashtbl.hash descr)) max_int in
  let current = ref placement in
  let current_cycles = ref baseline_cycles in
  let proposed = ref 0 in
  let confirmed = ref 0 in
  let accepted = ref 0 in
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ && !rounds < max_rounds do
    continue_ := false;
    let est = predict !current in
    let assign = (!current).Placement.assign in
    (* Occupancy maps for the current placement. *)
    let pe_owner = Hashtbl.create 64 in
    let ls_owner = Array.make grid.Grid.ls_entries (-1) in
    Array.iteri
      (fun j -> function
        | Placement.Pe c -> Hashtbl.replace pe_owner (c.Grid.row, c.Grid.col) j
        | Placement.Ls e -> if e >= 0 && e < Array.length ls_owner then ls_owner.(e) <- j)
      assign;
    let cand_with j loc =
      let assign' = Array.copy assign in
      assign'.(j) <- loc;
      Placement.make grid kind assign'
    in
    let swap_with j j2 =
      let assign' = Array.copy assign in
      assign'.(j) <- assign.(j2);
      assign'.(j2) <- assign.(j);
      Placement.make grid kind assign'
    in
    let seen = Hashtbl.create 64 in
    let cands = ref [] in
    let add descr pl =
      if not (Hashtbl.mem seen descr) then begin
        Hashtbl.replace seen descr ();
        match Placement.validate dfg pl with
        | Ok () -> cands := (descr, pl) :: !cands
        | Error _ -> ()
      end
    in
    List.iter
      (fun j ->
        if j >= 0 && j < n then
          match assign.(j) with
          | Placement.Ls e ->
            for e' = 0 to grid.Grid.ls_entries - 1 do
              if e' <> e then
                if ls_owner.(e') < 0 then
                  add (`Move_ls (j, e')) (cand_with j (Placement.Ls e'))
                else
                  let j2 = ls_owner.(e') in
                  add (`Swap (min j j2, max j j2)) (swap_with j j2)
            done
          | Placement.Pe c ->
            Grid.iter_coords grid (fun c' ->
                if c' <> c then
                  match Hashtbl.find_opt pe_owner (c'.Grid.row, c'.Grid.col) with
                  | None ->
                    if Grid.supports grid c' (cls_of j) then
                      add (`Move_pe (j, c'.Grid.row, c'.Grid.col))
                        (cand_with j (Placement.Pe c'))
                  | Some j2 ->
                    if
                      Grid.supports grid c' (cls_of j)
                      && Grid.supports grid c (cls_of j2)
                    then add (`Swap (min j j2, max j j2)) (swap_with j j2)))
      est.Cost_model.critical;
    (* Model-rank every candidate; only predicted improvements survive. *)
    let scored =
      List.filter_map
        (fun (descr, pl) ->
          incr proposed;
          let e = predict pl in
          if e.Cost_model.cycles < est.Cost_model.cycles then
            Some (e.Cost_model.cycles, tie descr, pl)
          else None)
        !cands
    in
    let ranked = List.sort compare scored in
    (* Engine-confirm the top of the ranking; first strict improvement
       wins the round. *)
    let rec try_beam k = function
      | [] -> ()
      | _ when k >= beam -> ()
      | (_, _, pl) :: rest ->
        incr confirmed;
        (match confirm pl with
        | Some cycles when cycles < !current_cycles ->
          current := pl;
          current_cycles := cycles;
          incr accepted;
          continue_ := true
        | Some _ | None -> try_beam (k + 1) rest)
    in
    try_beam 0 ranked;
    incr rounds
  done;
  {
    placement = !current;
    baseline_cycles;
    refined_cycles = !current_cycles;
    rounds = !rounds;
    proposed = !proposed;
    confirmed = !confirmed;
    accepted = !accepted;
  }

(* Figure 8: per instruction the FSM spends fixed stages (LDFG read,
   candidate generation, filtering, writeback) plus a reduction whose depth
   follows the window size. *)
let map_cycles config (dfg : Dfg.t) =
  let window = config.window_rows * config.window_cols in
  let reduction =
    let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
    log2 window 0
  in
  Dfg.node_count dfg * (4 + reduction)
