(** The iterative optimization loop (§1, §4.3): measurements in,
    possibly-better configuration out.

    After a profiling window on the fabric, the controller feeds the
    engine's counter readouts into the region's performance model and asks
    the mapper for a fresh placement under the measured weights. The new
    configuration is adopted only when its modeled iteration latency beats
    the current one by at least [improvement_threshold] — so the sequence of
    adopted configurations is monotone in modeled latency (a property the
    test suite checks). *)

val improvement_threshold : float
(** Relative gain required to pay a reconfiguration (5%). *)

val absorb : Perf_model.t -> Engine.result -> unit
(** Fold the window's counter readouts — per-node operation latency and
    per-edge transfer histograms from [result.measured] — into the model. *)

type outcome =
  | Keep of float         (** modeled latency of the retained configuration *)
  | Adopt of { config : Accel_config.t; latency : float; previous : float }
      (** new configuration with its (strictly better) modeled latency and
          the latency it displaced *)

val step :
  grid:Grid.t ->
  kind:Interconnect.kind ->
  mapper:Mapper.config ->
  model:Perf_model.t ->
  current:Accel_config.t ->
  outcome
(** One optimization attempt. When the remap does not clear the threshold,
    the model's edge estimates are restored to the current placement's. *)
