(** Task T3: configuration management — translation cost accounting and the
    configuration cache (§4.3).

    The cache keys on the region's entry address; a loop re-encountered
    after it was mapped skips the whole translate/map pipeline and pays only
    a lookup plus the bitstream rewrite. Costs are modeled in cycles of
    MESA's clock domain and feed both Table 2 (configuration latency) and
    the energy amortization study (Figure 16). *)

(** Everything MESA retains about a translated region. *)
type cached = {
  region : Region.t;
  dfg : Dfg.t;
  model : Perf_model.t;
  mutable config : Accel_config.t;
  mutable reconfigurations : int;
  mutable offloads : int;
  mutable translation_cycles : int;
  mutable accel_iterations : int;
  mutable accel_cycles : int;
  (* Fault-recovery bookkeeping (all zero on a clean run). *)
  mutable faults_detected : int;
  mutable fault_retries : int;
  mutable fault_remaps : int;
  mutable quarantines : int;
  mutable quarantined_until : int;
      (** offload ordinal before which the region runs on the CPU;
          0 = not quarantined *)
  mutable quarantine_backoff : int;
  mutable abort_reason : string option;
      (** why acceleration of this region was abandoned, if it was *)
}

type t

val create : unit -> t

val find : t -> int -> cached option
(** Lookup by region entry address. *)

val add : t -> cached -> unit
val entries : t -> cached list

(** {1 Cost model} *)

val ldfg_build_cycles : Dfg.t -> int
(** Renaming is pipelined at one instruction per cycle plus setup. *)

val translation_cycles : Mapper.config -> Dfg.t -> Accel_config.t -> int
(** Full pipeline: LDFG build + instruction mapping FSM + bitstream write.
    This is the configuration latency reported against Table 2. *)

val cache_hit_cycles : Accel_config.t -> Dfg.t -> int
(** Re-encounter cost: lookup plus bitstream rewrite. *)
