type options = {
  grid : Grid.t;
  kind : Interconnect.kind;
  detector : Loop_detector.config;
  mapper : Mapper.config;
  cpu : Ooo_model.config;
  optimize : bool;
  iterative : bool;
  profile_chunk : int;
  max_reopts : int;
  offload_overhead : int;
  max_steps : int;
  tune : Accel_config.t -> Accel_config.t;
}

let default_options ?(grid = Grid.m128) ?(optimize = true) ?(iterative = true) () =
  let capacity = min 512 (Grid.pe_count grid + grid.Grid.ls_entries) in
  {
    grid;
    kind = Interconnect.Mesh_noc;
    detector = { Loop_detector.default_config with Loop_detector.capacity };
    mapper = Mapper.default_config;
    cpu = Ooo_model.default_config;
    optimize;
    iterative;
    profile_chunk = 64;
    max_reopts = 3;
    offload_overhead = 80;
    max_steps = 200_000_000;
    tune = Fun.id;
  }

type region_report = {
  entry : int;
  size : int;
  pragma : Program.pragma option;
  accepted : bool;
  reject_reason : string option;
  tiling : int;
  pipelined : bool;
  translation_cycles : int;
  accel_iterations : int;
  accel_cycles : int;
  reconfigurations : int;
  offload_count : int;
}

type report = {
  total_cycles : int;
  cpu_cycles : int;
  accel_cycles : int;
  overhead_cycles : int;
  mesa_busy_cycles : int;
  offloads : int;
  halt : Interp.halt;
  cpu_summary : Ooo_model.summary;
  activity : Activity.t;
  regions : region_report list;
  hier : Hierarchy.t;
  stats : Stats.snapshot;
  timeline : Trace.span list;
}

let src = Logs.Src.create "mesa.controller" ~doc:"MESA controller"

module Log = (val Logs.src_log src : Logs.LOG)

(* Translate an accepted region end to end: capture through the trace cache,
   build the LDFG, map it, and bundle the optimization decisions. *)
let translate opts prog (region : Region.t) =
  let tc = Trace_cache.create ~capacity:opts.detector.Loop_detector.capacity in
  Trace_cache.set_region tc ~entry:region.Region.entry ~last:region.Region.back_branch_addr;
  Trace_cache.fill_from tc (fun addr ->
      Option.map Encode.to_word (Program.fetch prog addr));
  if not (Trace_cache.complete tc) then Error "trace cache capture incomplete"
  else begin
    (* Decode the captured words — the LDFG builder sees exactly what the
       hardware stored, not the convenient [Region] array. *)
    let words = Trace_cache.words tc in
    let decoded = Array.map Decode.of_word_exn words in
    let region = { region with Region.instrs = decoded } in
    match Ldfg.build region with
    | Error e -> Error e
    | Ok dfg -> (
      (* Deduplicate recomputed pure values before burning PEs on them. *)
      let dfg = if opts.optimize then fst (Cse.apply dfg) else dfg in
      let model = Perf_model.create dfg in
      match Mapper.map ~config:opts.mapper ~grid:opts.grid ~kind:opts.kind model with
      | Error e -> Error e
      | Ok placement ->
        let mo = if opts.optimize then Mem_opt.analyze dfg else Mem_opt.none in
        let ld =
          if opts.optimize then
            Loop_opt.decide ~grid:opts.grid ~dfg ~pragma:region.Region.pragma
          else Loop_opt.no_opt
        in
        let config =
          opts.tune
            (Accel_config.with_opts ~forwarding:mo.Mem_opt.forwarding
               ~vector_groups:mo.Mem_opt.vector_groups ~prefetched:mo.Mem_opt.prefetched
               ~tiling:ld.Loop_opt.tiling ~pipelined:ld.Loop_opt.pipelined placement)
        in
        Ok
          {
            Config_manager.region;
            dfg;
            model;
            config;
            reconfigurations = 0;
            offloads = 0;
            translation_cycles = 0;
            accel_iterations = 0;
            accel_cycles = 0;
          })
  end

let run ?options ?hier ?stats prog machine =
  let opts = match options with Some o -> o | None -> default_options () in
  let hier =
    match hier with Some h -> h | None -> Hierarchy.create Hierarchy.default_config
  in
  let cpu_model = Ooo_model.create opts.cpu hier in
  let detector = Loop_detector.create ~config:opts.detector prog in
  let cache = Config_manager.create () in
  let activity = Activity.create () in
  (* The unified counter registry (paper §5's performance counters): every
     subsystem registers a named group, and the whole tree is snapshotted
     into the report. The counters below *are* the accounting state — no
     shadow refs. *)
  let reg = match stats with Some r -> r | None -> Stats.registry () in
  Ooo_model.register_stats cpu_model (Stats.group reg "cpu");
  Hierarchy.register_stats hier (Stats.group reg "cache");
  let engine_grp = Stats.group reg "engine" in
  Activity.register_stats activity engine_grp;
  let windows = Stats.counter engine_grp "windows" in
  let ctl = Stats.group reg "controller" in
  let accel_cycles = Stats.counter ctl "accel_cycles" in
  let overhead = Stats.counter ctl "overhead_cycles" in
  let mesa_busy = Stats.counter ctl "mesa_busy_cycles" in
  let offloads = Stats.counter ctl "offloads" in
  let reconfigurations = Stats.counter ctl "reconfigurations" in
  let reopt_rounds = Stats.counter ctl "reopt_rounds" in
  let translations = Stats.counter ctl "translations" in
  let translation_cycles_c = Stats.counter ctl "translation_cycles" in
  let regions_accepted = Stats.counter ctl "regions_accepted" in
  let regions_rejected = Stats.counter ctl "regions_rejected" in
  let config_cache_hits = Stats.counter ctl "config_cache_hits" in
  let cpu_cycles_now () = (Ooo_model.summary cpu_model).Ooo_model.cycles in
  Stats.int_probe ctl "cpu_cycles" cpu_cycles_now;
  Stats.int_probe ctl "total_cycles" (fun () ->
      cpu_cycles_now () + Stats.get accel_cycles + Stats.get overhead);
  let regions_grp = Stats.group reg "regions" in
  let timeline : Trace.span list ref = ref [] in
  let wall_now () = cpu_cycles_now () + Stats.get accel_cycles + Stats.get overhead in
  let emit sp = timeline := sp :: !timeline in
  let rname entry = Printf.sprintf "r%x" entry in
  let rejected : region_report list ref = ref [] in
  (* A configuration being written while the CPU keeps running: ready once
     the CPU clock passes [ready_at]. *)
  let pending : (Config_manager.cached * int) option ref = ref None in

  let run_offload (c : Config_manager.cached) =
    Log.debug (fun m -> m "offloading %a" Region.pp c.Config_manager.region);
    Stats.add overhead (2 * opts.offload_overhead);
    Stats.incr offloads;
    c.Config_manager.offloads <- c.Config_manager.offloads + 1;
    let entry = c.Config_manager.region.Region.entry in
    let budget = ref (if opts.iterative then opts.max_reopts else 0) in
    let running = ref true in
    while !running do
      let stop_after = if !budget > 0 then Some opts.profile_chunk else None in
      let window_start = wall_now () in
      match
        Engine.execute ?stop_after ~config:c.Config_manager.config
          ~dfg:c.Config_manager.dfg ~machine ~hier ()
      with
      | Error e -> failwith ("MESA engine failure: " ^ e)
      | Ok res ->
        Stats.add accel_cycles res.Engine.cycles;
        Stats.incr windows;
        Activity.add activity res.Engine.activity;
        c.Config_manager.accel_iterations <-
          c.Config_manager.accel_iterations + res.Engine.iterations;
        c.Config_manager.accel_cycles <- c.Config_manager.accel_cycles + res.Engine.cycles;
        emit
          (Trace.span ~cat:"fabric" ~ts:window_start ~dur:res.Engine.cycles
             ~args:
               [
                 ("iterations", Json.Int res.Engine.iterations);
                 ("completed", Json.Bool res.Engine.completed);
               ]
             ("offload " ^ rname entry));
        if res.Engine.completed then running := false
        else if !budget > 0 then begin
          decr budget;
          Stats.incr reopt_rounds;
          Optimizer.absorb c.Config_manager.model res;
          match
            Optimizer.step ~grid:opts.grid ~kind:opts.kind ~mapper:opts.mapper
              ~model:c.Config_manager.model ~current:c.Config_manager.config
          with
          | Optimizer.Adopt { config = config'; latency; previous } ->
            let stall = Accel_config.config_cycles config' c.Config_manager.dfg in
            (* Only pay the reconfiguration if the modeled per-iteration gain
               can plausibly amortize the stall over a horizon like the one
               already observed. *)
            let horizon =
              float_of_int (max (4 * opts.profile_chunk) c.Config_manager.accel_iterations)
            in
            let gain = (previous -. latency) /. float_of_int config'.Accel_config.tiling in
            if gain *. horizon > float_of_int stall then begin
              Log.debug (fun m ->
                  m "reconfiguring %a: modeled latency %.1f -> %.1f" Region.pp
                    c.Config_manager.region previous latency);
              c.Config_manager.config <- config';
              c.Config_manager.reconfigurations <- c.Config_manager.reconfigurations + 1;
              Stats.incr reconfigurations;
              emit
                (Trace.span ~cat:"mesa" ~ts:(wall_now ()) ~dur:stall
                   ~args:
                     [
                       ("modeled_latency_before", Json.Float previous);
                       ("modeled_latency_after", Json.Float latency);
                     ]
                   ("reconfigure " ^ rname entry));
              Stats.add overhead stall;
              Stats.add mesa_busy stall
            end
            else budget := 0
          | Optimizer.Keep _ -> budget := 0
        end
    done
  in

  let halt = ref None in
  let steps = ref 0 in
  while !halt = None do
    if !steps >= opts.max_steps then halt := Some Interp.Step_limit
    else begin
      (* Offload / re-arm checks happen at instruction boundaries, i.e. when
         the PC sits at the loop entry. *)
      (match !pending with
      | Some (c, ready_at)
        when machine.Machine.pc = c.Config_manager.region.Region.entry
             && cpu_cycles_now () >= ready_at ->
        pending := None;
        run_offload c
      | Some _ -> ()
      | None -> (
        match Config_manager.find cache machine.Machine.pc with
        | Some c ->
          (* Config-cache hit on re-entering a known loop: rewrite the
             bitstream while the CPU keeps iterating. *)
          let cost =
            Config_manager.cache_hit_cycles c.Config_manager.config c.Config_manager.dfg
          in
          Stats.add mesa_busy cost;
          Stats.incr config_cache_hits;
          emit
            (Trace.span ~cat:"mesa" ~ts:(wall_now ()) ~dur:cost
               ("rearm " ^ rname c.Config_manager.region.Region.entry));
          pending := Some (c, cpu_cycles_now () + cost)
        | None -> ()));
      match Interp.step prog machine with
      | Error h -> halt := Some h
      | Ok ev -> (
        incr steps;
        Ooo_model.feed cpu_model ev;
        match Loop_detector.feed detector ev with
        | Some (Loop_detector.Accepted region) -> (
          match translate opts prog region with
          | Ok cached ->
            let tcycles =
              Config_manager.translation_cycles opts.mapper cached.Config_manager.dfg
                cached.Config_manager.config
            in
            cached.Config_manager.translation_cycles <- tcycles;
            Stats.add mesa_busy tcycles;
            Stats.incr translations;
            Stats.add translation_cycles_c tcycles;
            Stats.incr regions_accepted;
            (* Per-region counter subgroup, sampled from the cached record at
               snapshot time. *)
            (try
               let rg = Stats.subgroup regions_grp (rname region.Region.entry) in
               Stats.int_probe rg "offloads" (fun () -> cached.Config_manager.offloads);
               Stats.int_probe rg "reconfigurations" (fun () ->
                   cached.Config_manager.reconfigurations);
               Stats.int_probe rg "accel_iterations" (fun () ->
                   cached.Config_manager.accel_iterations);
               Stats.int_probe rg "accel_cycles" (fun () ->
                   cached.Config_manager.accel_cycles);
               Stats.int_probe rg "translation_cycles" (fun () ->
                   cached.Config_manager.translation_cycles)
             with Invalid_argument _ -> ());
            emit
              (Trace.span ~cat:"mesa" ~ts:(wall_now ()) ~dur:tcycles
                 ~args:[ ("region_size", Json.Int (Region.size region)) ]
                 ("translate " ^ rname region.Region.entry));
            Config_manager.add cache cached;
            pending := Some (cached, cpu_cycles_now () + tcycles);
            Log.debug (fun m ->
                m "accepted %a, translation %d cycles" Region.pp region tcycles)
          | Error reason ->
            Loop_detector.blacklist detector region.Region.entry;
            Stats.incr regions_rejected;
            emit
              (Trace.instant ~cat:"detector" ~ts:(wall_now ())
                 ~args:[ ("reason", Json.String reason) ]
                 ("reject " ^ rname region.Region.entry));
            Log.debug (fun m -> m "mapping failed for %a: %s" Region.pp region reason);
            rejected :=
              {
                entry = region.Region.entry;
                size = Region.size region;
                pragma = region.Region.pragma;
                accepted = false;
                reject_reason = Some reason;
                tiling = 1;
                pipelined = false;
                translation_cycles = 0;
                accel_iterations = 0;
                accel_cycles = 0;
                reconfigurations = 0;
                offload_count = 0;
              }
              :: !rejected)
        | Some (Loop_detector.Rejected { entry; reason }) ->
          Stats.incr regions_rejected;
          emit
            (Trace.instant ~cat:"detector" ~ts:(wall_now ())
               ~args:[ ("reason", Json.String reason) ]
               ("reject " ^ rname entry));
          Log.debug (fun m -> m "rejected region 0x%x: %s" entry reason);
          rejected :=
            {
              entry;
              size = 0;
              pragma = None;
              accepted = false;
              reject_reason = Some reason;
              tiling = 1;
              pipelined = false;
              translation_cycles = 0;
              accel_iterations = 0;
              accel_cycles = 0;
              reconfigurations = 0;
              offload_count = 0;
            }
            :: !rejected
        | None -> ())
    end
  done;
  let cpu_summary = Ooo_model.summary cpu_model in
  let accepted_reports =
    List.map
      (fun (c : Config_manager.cached) ->
        {
          entry = c.Config_manager.region.Region.entry;
          size = Region.size c.Config_manager.region;
          pragma = c.Config_manager.region.Region.pragma;
          accepted = true;
          reject_reason = None;
          tiling = c.Config_manager.config.Accel_config.tiling;
          pipelined = c.Config_manager.config.Accel_config.pipelined;
          translation_cycles = c.Config_manager.translation_cycles;
          accel_iterations = c.Config_manager.accel_iterations;
          accel_cycles = c.Config_manager.accel_cycles;
          reconfigurations = c.Config_manager.reconfigurations;
          offload_count = c.Config_manager.offloads;
        })
      (Config_manager.entries cache)
  in
  {
    total_cycles = cpu_summary.Ooo_model.cycles + Stats.get accel_cycles + Stats.get overhead;
    cpu_cycles = cpu_summary.Ooo_model.cycles;
    accel_cycles = Stats.get accel_cycles;
    overhead_cycles = Stats.get overhead;
    mesa_busy_cycles = Stats.get mesa_busy;
    offloads = Stats.get offloads;
    halt = Option.get !halt;
    cpu_summary;
    activity;
    regions = accepted_reports @ List.rev !rejected;
    hier;
    stats = Stats.snapshot reg;
    timeline = List.rev !timeline;
  }

let speedup ~baseline_cycles report =
  if report.total_cycles = 0 then 0.0
  else float_of_int baseline_cycles /. float_of_int report.total_cycles
