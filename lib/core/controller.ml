type options = {
  grid : Grid.t;
  kind : Interconnect.kind;
  detector : Loop_detector.config;
  mapper : Mapper.config;
  cpu : Ooo_model.config;
  optimize : bool;
  iterative : bool;
  profile_chunk : int;
  max_reopts : int;
  offload_overhead : int;
  max_steps : int;
  engine_max_iterations : int;
  watchdog_window : int;
  max_fault_retries : int;
  inject : Fault.spec option;
  profile : bool;
  tune : Accel_config.t -> Accel_config.t;
}

let default_options ?(grid = Grid.m128) ?(optimize = true) ?(iterative = true)
    ?inject ?(profile = false) () =
  let capacity = min 512 (Grid.pe_count grid + grid.Grid.ls_entries) in
  {
    grid;
    kind = Interconnect.Mesh_noc;
    detector = { Loop_detector.default_config with Loop_detector.capacity };
    mapper = Mapper.default_config;
    cpu = Ooo_model.default_config;
    optimize;
    iterative;
    profile_chunk = 64;
    max_reopts = 3;
    offload_overhead = 80;
    max_steps = 200_000_000;
    engine_max_iterations = 4_000_000;
    watchdog_window = 512;
    max_fault_retries = 3;
    inject;
    profile;
    tune = Fun.id;
  }

type region_report = {
  entry : int;
  size : int;
  pragma : Program.pragma option;
  accepted : bool;
  reject_reason : string option;
  tiling : int;
  pipelined : bool;
  translation_cycles : int;
  accel_iterations : int;
  accel_cycles : int;
  reconfigurations : int;
  offload_count : int;
  faults_detected : int;
  fault_retries : int;
  fault_remaps : int;
  quarantines : int;
  critical_path : int list;
  critical_path_latency : float;
  measured : Stats.snapshot option;
}

type report = {
  total_cycles : int;
  cpu_cycles : int;
  accel_cycles : int;
  overhead_cycles : int;
  mesa_busy_cycles : int;
  offloads : int;
  halt : Interp.halt;
  cpu_summary : Ooo_model.summary;
  activity : Activity.t;
  regions : region_report list;
  hier : Hierarchy.t;
  stats : Stats.snapshot;
  timeline : Trace.span list;
  attribution : Attribution.t option;
}

let src = Logs.Src.create "mesa.controller" ~doc:"MESA controller"

module Log = (val Logs.src_log src : Logs.LOG)

(* Build the optimization bundle for [dfg]'s model on [grid] — shared by
   initial translation and by post-fault remapping onto a degraded fabric. *)
let configure opts ~grid ~dfg ~model ~pragma =
  match Mapper.map ~config:opts.mapper ~grid ~kind:opts.kind model with
  | Error e -> Error e
  | Ok placement ->
    let mo = if opts.optimize then Mem_opt.analyze dfg else Mem_opt.none in
    let ld =
      if opts.optimize then Loop_opt.decide ~grid ~dfg ~pragma
      else Loop_opt.no_opt
    in
    Ok
      (opts.tune
         (Accel_config.with_opts ~forwarding:mo.Mem_opt.forwarding
            ~vector_groups:mo.Mem_opt.vector_groups ~prefetched:mo.Mem_opt.prefetched
            ~tiling:ld.Loop_opt.tiling ~pipelined:ld.Loop_opt.pipelined placement))

(* Translate an accepted region end to end: capture through the trace cache,
   build the LDFG, map it, and bundle the optimization decisions. [grid] is
   the current (possibly fault-degraded) fabric. *)
let translate opts ~grid prog (region : Region.t) =
  let tc = Trace_cache.create ~capacity:opts.detector.Loop_detector.capacity in
  Trace_cache.set_region tc ~entry:region.Region.entry ~last:region.Region.back_branch_addr;
  Trace_cache.fill_from tc (fun addr ->
      Option.map Encode.to_word (Program.fetch prog addr));
  if not (Trace_cache.complete tc) then Error "trace cache capture incomplete"
  else begin
    (* Decode the captured words — the LDFG builder sees exactly what the
       hardware stored, not the convenient [Region] array. *)
    let words = Trace_cache.words tc in
    let decoded = Array.map Decode.of_word_exn words in
    let region = { region with Region.instrs = decoded } in
    match Ldfg.build region with
    | Error e -> Error e
    | Ok dfg -> (
      (* Deduplicate recomputed pure values before burning PEs on them. *)
      let dfg = if opts.optimize then fst (Cse.apply dfg) else dfg in
      let model = Perf_model.create dfg in
      match configure opts ~grid ~dfg ~model ~pragma:region.Region.pragma with
      | Error e -> Error e
      | Ok config ->
        Ok
          {
            Config_manager.region;
            dfg;
            model;
            config;
            reconfigurations = 0;
            offloads = 0;
            translation_cycles = 0;
            accel_iterations = 0;
            accel_cycles = 0;
            faults_detected = 0;
            fault_retries = 0;
            fault_remaps = 0;
            quarantines = 0;
            quarantined_until = 0;
            quarantine_backoff = 0;
            abort_reason = None;
          })
  end

let run ?options ?hier ?stats prog machine =
  let opts = match options with Some o -> o | None -> default_options () in
  let hier =
    match hier with Some h -> h | None -> Hierarchy.create Hierarchy.default_config
  in
  let cpu_model = Ooo_model.create opts.cpu hier in
  let detector = Loop_detector.create ~config:opts.detector prog in
  let cache = Config_manager.create () in
  let activity = Activity.create () in
  (* The unified counter registry (paper §5's performance counters): every
     subsystem registers a named group, and the whole tree is snapshotted
     into the report. The counters below *are* the accounting state — no
     shadow refs. *)
  let reg = match stats with Some r -> r | None -> Stats.registry () in
  Ooo_model.register_stats cpu_model (Stats.group reg "cpu");
  Hierarchy.register_stats hier (Stats.group reg "cache");
  let engine_grp = Stats.group reg "engine" in
  Activity.register_stats activity engine_grp;
  let windows = Stats.counter engine_grp "windows" in
  let ctl = Stats.group reg "controller" in
  let accel_cycles = Stats.counter ctl "accel_cycles" in
  let overhead = Stats.counter ctl "overhead_cycles" in
  let mesa_busy = Stats.counter ctl "mesa_busy_cycles" in
  let offloads = Stats.counter ctl "offloads" in
  let reconfigurations = Stats.counter ctl "reconfigurations" in
  let reopt_rounds = Stats.counter ctl "reopt_rounds" in
  let translations = Stats.counter ctl "translations" in
  let translation_cycles_c = Stats.counter ctl "translation_cycles" in
  let regions_accepted = Stats.counter ctl "regions_accepted" in
  let regions_rejected = Stats.counter ctl "regions_rejected" in
  let config_cache_hits = Stats.counter ctl "config_cache_hits" in
  let budget_aborts = Stats.counter ctl "iteration_budget_aborts" in
  (* Fault injection and recovery. The [faults] group is always registered
     (all-zero on a clean run, which the golden test pins). *)
  let injector =
    match opts.inject with
    | None -> None
    | Some sp -> Some (Fault.create ~grid:opts.grid sp)
  in
  (* The live fabric: pristine until permanent damage is masked out. *)
  let fabric = ref opts.grid in
  let faults_grp = Stats.group reg "faults" in
  Stats.int_probe faults_grp "injected" (fun () ->
      match injector with Some f -> Fault.injected f | None -> 0);
  let f_detected = Stats.counter faults_grp "detected" in
  let f_retried = Stats.counter faults_grp "retried" in
  let f_remapped = Stats.counter faults_grp "remapped" in
  let f_quarantined = Stats.counter faults_grp "quarantined" in
  let f_config_upsets = Stats.counter faults_grp "config_upsets" in
  let f_latency = Stats.histogram faults_grp "detection_latency" in
  let cpu_cycles_now () = (Ooo_model.summary cpu_model).Ooo_model.cycles in
  Stats.int_probe ctl "cpu_cycles" cpu_cycles_now;
  Stats.int_probe ctl "total_cycles" (fun () ->
      cpu_cycles_now () + Stats.get accel_cycles + Stats.get overhead);
  (* Cycle attribution (`mesa profile`): the collector is pure observation —
     the engine's timing, the optimizer's decisions and the architectural
     state are bit-identical with profiling on or off. Measured weights for
     the profiler's critical-path extraction are absorbed into dedicated
     per-region models so the iterative optimizer's model is never touched
     on the profiling path. *)
  let att =
    if opts.profile then Some (Attribution.create ~grid:opts.grid ()) else None
  in
  let profile_models : (int, Perf_model.t) Hashtbl.t = Hashtbl.create 8 in
  (* Last clean window's measured per-node/per-edge snapshot, per region —
     surfaced in the region report so a service-level profiling window can
     feed the cost model's measured oracles without re-running the engine. *)
  let measured_snaps : (int, Stats.snapshot) Hashtbl.t = Hashtbl.create 8 in
  let charge_att cycles =
    match att with Some a -> Attribution.charge_config a cycles | None -> ()
  in
  let regions_grp = Stats.group reg "regions" in
  let timeline : Trace.span list ref = ref [] in
  let wall_now () = cpu_cycles_now () + Stats.get accel_cycles + Stats.get overhead in
  let emit sp = timeline := sp :: !timeline in
  let rname entry = Printf.sprintf "r%x" entry in
  (* One configuration write of [base] cycles, re-paid for every scheduled
     bitstream upset the checksum catches (each retry is itself a fresh
     write the schedule may hit again). *)
  let config_write_cost entry base =
    match injector with
    | None -> base
    | Some f ->
      let cost = ref base in
      while Fault.config_write f do
        Stats.incr f_config_upsets;
        Stats.incr f_detected;
        Stats.incr f_retried;
        emit
          (Trace.instant ~cat:"fault" ~ts:(wall_now ())
             ~args:[ ("rewrite_cycles", Json.Int base) ]
             ("config upset " ^ rname entry));
        cost := !cost + base
      done;
      !cost
  in
  let rejected : region_report list ref = ref [] in
  (* A configuration being written while the CPU keeps running: ready once
     the CPU clock passes [ready_at]. *)
  let pending : (Config_manager.cached * int) option ref = ref None in

  let run_offload (c : Config_manager.cached) =
    Log.debug (fun m -> m "offloading %a" Region.pp c.Config_manager.region);
    Stats.add overhead (2 * opts.offload_overhead);
    (* Architectural state transfer both ways: configuration overhead. *)
    charge_att (2 * opts.offload_overhead);
    Stats.incr offloads;
    c.Config_manager.offloads <- c.Config_manager.offloads + 1;
    let entry = c.Config_manager.region.Region.entry in
    let budget = ref (if opts.iterative then opts.max_reopts else 0) in
    let running = ref true in
    let consecutive_faults = ref 0 in
    while !running do
      let stop_after = if !budget > 0 then Some opts.profile_chunk else None in
      let window_start = wall_now () in
      (match att with
      | Some a -> Attribution.begin_window a ~at:(float_of_int window_start)
      | None -> ());
      (* Iteration-boundary checkpoint: the PC sits at the loop entry here
         (both at offload start and after a profiling pause), so restoring
         it hands the loop back to the CPU — or to a retried window — in a
         bit-exact state. Only paid when a fault schedule is armed. *)
      let checkpoint =
        match injector with
        | None -> None
        | Some _ ->
          Some (Machine.copy machine (), Main_memory.copy machine.Machine.mem)
      in
      let restore () =
        match checkpoint with
        | Some (m, mem) ->
          Machine.restore machine ~from:m;
          Main_memory.restore machine.Machine.mem ~from:mem
        | None -> ()
      in
      let quarantine reason =
        c.Config_manager.quarantine_backoff <-
          (if c.Config_manager.quarantine_backoff = 0 then 8
           else c.Config_manager.quarantine_backoff * 2);
        c.Config_manager.quarantined_until <- c.Config_manager.quarantine_backoff;
        c.Config_manager.quarantines <- c.Config_manager.quarantines + 1;
        c.Config_manager.abort_reason <- Some reason;
        Stats.incr f_quarantined;
        emit
          (Trace.instant ~cat:"fault" ~ts:(wall_now ())
             ~args:
               [
                 ("reason", Json.String reason);
                 ("backoff", Json.Int c.Config_manager.quarantine_backoff);
               ]
             ("quarantine " ^ rname entry));
        Log.debug (fun m ->
            m "quarantining %a: %s" Region.pp c.Config_manager.region reason);
        running := false
      in
      (* The recovery ladder: restore the checkpoint, then retry (transient),
         remap around masked damage (permanent), or quarantine with
         exponential backoff and let the CPU finish bit-exactly. *)
      let handle_fault ~kinds ~latency ~watchdog ~wasted =
        restore ();
        Stats.incr windows;
        Stats.incr f_detected;
        Stats.observe f_latency (float_of_int latency);
        c.Config_manager.faults_detected <- c.Config_manager.faults_detected + 1;
        (* The discarded window and the state transfer back are recovery
           overhead, not useful accelerator work. The profiler discards the
           window's attribution and re-charges the same cycles as Config, so
           closure against the run's wall-clock accounting is preserved. *)
        Stats.add overhead (wasted + opts.offload_overhead);
        (match att with
        | Some a ->
          Attribution.abort_window a;
          Attribution.charge_config a (wasted + opts.offload_overhead)
        | None -> ());
        emit
          (Trace.span ~cat:"fault" ~ts:window_start ~dur:(max 1 wasted)
             ~args:
               [
                 ( "kinds",
                   Json.String
                     (String.concat "+" (List.map Fault.kind_name kinds)) );
                 ("detection_latency", Json.Int latency);
                 ("watchdog", Json.Bool watchdog);
               ]
             ("fault " ^ rname entry));
        let f = Option.get injector in
        let permanent =
          List.exists
            (fun k -> k = Fault.Permanent_pe || k = Fault.Link_down)
            kinds
        in
        if permanent then begin
          if List.length (Fault.dead f) > List.length (!fabric).Grid.masked
          then begin
            (* New permanent damage: mask it out of the pristine geometry
               (cumulatively) and re-run placement on what is left. *)
            fabric := Grid.mask opts.grid (Fault.dead_coords f);
            match
              configure opts ~grid:!fabric ~dfg:c.Config_manager.dfg
                ~model:c.Config_manager.model
                ~pragma:c.Config_manager.region.Region.pragma
            with
            | Ok config' ->
              let stall =
                config_write_cost entry
                  (Mapper.map_cycles opts.mapper c.Config_manager.dfg
                  + Accel_config.config_cycles config' c.Config_manager.dfg)
              in
              c.Config_manager.config <- config';
              c.Config_manager.fault_remaps <-
                c.Config_manager.fault_remaps + 1;
              Stats.incr f_remapped;
              Stats.add overhead stall;
              Stats.add mesa_busy stall;
              charge_att stall;
              consecutive_faults := 0;
              emit
                (Trace.span ~cat:"fault" ~ts:(wall_now ()) ~dur:stall
                   ~args:
                     [
                       ( "masked_pes",
                         Json.Int (List.length (!fabric).Grid.masked) );
                     ]
                   ("remap " ^ rname entry));
              Log.debug (fun m ->
                  m "remapped %a around %d masked PEs" Region.pp
                    c.Config_manager.region
                    (List.length (!fabric).Grid.masked))
            | Error e -> quarantine ("remap failed: " ^ e)
          end
          else quarantine "permanent fault persists after remap"
        end
        else begin
          incr consecutive_faults;
          if !consecutive_faults > opts.max_fault_retries then
            quarantine "persistent faults exceeded retry budget"
          else begin
            c.Config_manager.fault_retries <-
              c.Config_manager.fault_retries + 1;
            Stats.incr f_retried;
            emit
              (Trace.instant ~cat:"fault" ~ts:(wall_now ())
                 ~args:[ ("attempt", Json.Int !consecutive_faults) ]
                 ("retry " ^ rname entry))
          end
        end
      in
      let outcome =
        try
          `R
            (Engine.execute ?stop_after
               ~max_iterations:opts.engine_max_iterations
               ~watchdog_window:opts.watchdog_window ?fault:injector
               ?attribution:att
               ~config:c.Config_manager.config ~dfg:c.Config_manager.dfg
               ~machine ~hier ())
        with exn -> (
          match injector with
          | Some f when Fault.window_corrupted f ->
            `Crashed (Fault.window_kinds f)
          | Some _ | None -> raise exn)
      in
      match outcome with
      | `Crashed kinds ->
        (* A corrupted value escaped as a wild memory access before the
           window ended: an immediately detected fault. *)
        handle_fault ~kinds ~latency:0 ~watchdog:false ~wasted:0
      | `R (Error e) -> failwith ("MESA engine failure: " ^ e)
      | `R (Ok res) -> (
        match res.Engine.fault with
        | Some d ->
          handle_fault ~kinds:d.Engine.d_kinds ~latency:d.Engine.d_latency
            ~watchdog:d.Engine.d_watchdog ~wasted:res.Engine.cycles
        | None ->
        consecutive_faults := 0;
        Stats.add accel_cycles res.Engine.cycles;
        Stats.incr windows;
        Activity.add activity res.Engine.activity;
        c.Config_manager.accel_iterations <-
          c.Config_manager.accel_iterations + res.Engine.iterations;
        c.Config_manager.accel_cycles <- c.Config_manager.accel_cycles + res.Engine.cycles;
        (match att with
        | Some _ ->
          (* Absorb this window's counters into the profiler's own model so
             critical-path extraction sees measured weights even when the
             iterative optimizer is off (or out of budget). *)
          let pm =
            match Hashtbl.find_opt profile_models entry with
            | Some pm -> pm
            | None ->
              let pm = Perf_model.create c.Config_manager.dfg in
              Hashtbl.add profile_models entry pm;
              pm
          in
          Optimizer.absorb pm res;
          Hashtbl.replace measured_snaps entry res.Engine.measured
        | None -> ());
        emit
          (Trace.span ~cat:"fabric" ~ts:window_start ~dur:res.Engine.cycles
             ~args:
               [
                 ("iterations", Json.Int res.Engine.iterations);
                 ("completed", Json.Bool res.Engine.completed);
               ]
             ("offload " ^ rname entry));
        if res.Engine.completed then running := false
        else if res.Engine.budget_exhausted then begin
          (* The safety budget is a distinct abort, not a silent pause: hand
             the loop back to the CPU (the paused state is architecturally
             consistent) and stop re-arming this region. *)
          Stats.incr budget_aborts;
          c.Config_manager.abort_reason <- Some "iteration budget exhausted";
          c.Config_manager.quarantined_until <- max_int;
          emit
            (Trace.instant ~cat:"mesa" ~ts:(wall_now ())
               ~args:[ ("iterations", Json.Int res.Engine.iterations) ]
               ("budget abort " ^ rname entry));
          running := false
        end
        else if !budget > 0 then begin
          decr budget;
          Stats.incr reopt_rounds;
          Optimizer.absorb c.Config_manager.model res;
          match
            Optimizer.step ~grid:!fabric ~kind:opts.kind ~mapper:opts.mapper
              ~model:c.Config_manager.model ~current:c.Config_manager.config
          with
          | Optimizer.Adopt { config = config'; latency; previous } ->
            let stall = Accel_config.config_cycles config' c.Config_manager.dfg in
            (* Only pay the reconfiguration if the modeled per-iteration gain
               can plausibly amortize the stall over a horizon like the one
               already observed. *)
            let horizon =
              float_of_int (max (4 * opts.profile_chunk) c.Config_manager.accel_iterations)
            in
            let gain = (previous -. latency) /. float_of_int config'.Accel_config.tiling in
            if gain *. horizon > float_of_int stall then begin
              Log.debug (fun m ->
                  m "reconfiguring %a: modeled latency %.1f -> %.1f" Region.pp
                    c.Config_manager.region previous latency);
              c.Config_manager.config <- config';
              c.Config_manager.reconfigurations <- c.Config_manager.reconfigurations + 1;
              Stats.incr reconfigurations;
              let stall = config_write_cost entry stall in
              emit
                (Trace.span ~cat:"mesa" ~ts:(wall_now ()) ~dur:stall
                   ~args:
                     [
                       ("modeled_latency_before", Json.Float previous);
                       ("modeled_latency_after", Json.Float latency);
                     ]
                   ("reconfigure " ^ rname entry));
              Stats.add overhead stall;
              Stats.add mesa_busy stall;
              charge_att stall
            end
            else budget := 0
          | Optimizer.Keep _ -> budget := 0
        end)
    done
  in

  let halt = ref None in
  let steps = ref 0 in
  while !halt = None do
    if !steps >= opts.max_steps then halt := Some Interp.Step_limit
    else begin
      (* Offload / re-arm checks happen at instruction boundaries, i.e. when
         the PC sits at the loop entry. *)
      (match !pending with
      | Some (c, ready_at)
        when machine.Machine.pc = c.Config_manager.region.Region.entry
             && cpu_cycles_now () >= ready_at ->
        pending := None;
        run_offload c
      | Some _ -> ()
      | None -> (
        match Config_manager.find cache machine.Machine.pc with
        | Some c when c.Config_manager.quarantined_until > 0 ->
          (* Quarantined region: the CPU runs the loop; each entry
             encounter burns down the exponential backoff before MESA is
             allowed to re-arm it. *)
          c.Config_manager.quarantined_until <-
            c.Config_manager.quarantined_until - 1
        | Some c ->
          (* Config-cache hit on re-entering a known loop: rewrite the
             bitstream while the CPU keeps iterating. *)
          let cost =
            config_write_cost c.Config_manager.region.Region.entry
              (Config_manager.cache_hit_cycles c.Config_manager.config
                 c.Config_manager.dfg)
          in
          Stats.add mesa_busy cost;
          Stats.incr config_cache_hits;
          emit
            (Trace.span ~cat:"mesa" ~ts:(wall_now ()) ~dur:cost
               ("rearm " ^ rname c.Config_manager.region.Region.entry));
          pending := Some (c, cpu_cycles_now () + cost)
        | None -> ()));
      match Interp.step prog machine with
      | Error h -> halt := Some h
      | Ok ev -> (
        incr steps;
        Ooo_model.feed cpu_model ev;
        match Loop_detector.feed detector ev with
        | Some (Loop_detector.Accepted region) -> (
          match translate opts ~grid:!fabric prog region with
          | Ok cached ->
            let tcycles =
              config_write_cost region.Region.entry
                (Config_manager.translation_cycles opts.mapper
                   cached.Config_manager.dfg cached.Config_manager.config)
            in
            cached.Config_manager.translation_cycles <- tcycles;
            Stats.add mesa_busy tcycles;
            Stats.incr translations;
            Stats.add translation_cycles_c tcycles;
            Stats.incr regions_accepted;
            (* Per-region counter subgroup, sampled from the cached record at
               snapshot time. *)
            (try
               let rg = Stats.subgroup regions_grp (rname region.Region.entry) in
               Stats.int_probe rg "offloads" (fun () -> cached.Config_manager.offloads);
               Stats.int_probe rg "reconfigurations" (fun () ->
                   cached.Config_manager.reconfigurations);
               Stats.int_probe rg "accel_iterations" (fun () ->
                   cached.Config_manager.accel_iterations);
               Stats.int_probe rg "accel_cycles" (fun () ->
                   cached.Config_manager.accel_cycles);
               Stats.int_probe rg "translation_cycles" (fun () ->
                   cached.Config_manager.translation_cycles);
               Stats.int_probe rg "faults_detected" (fun () ->
                   cached.Config_manager.faults_detected);
               Stats.int_probe rg "fault_remaps" (fun () ->
                   cached.Config_manager.fault_remaps)
             with Invalid_argument _ -> ());
            emit
              (Trace.span ~cat:"mesa" ~ts:(wall_now ()) ~dur:tcycles
                 ~args:[ ("region_size", Json.Int (Region.size region)) ]
                 ("translate " ^ rname region.Region.entry));
            Config_manager.add cache cached;
            pending := Some (cached, cpu_cycles_now () + tcycles);
            Log.debug (fun m ->
                m "accepted %a, translation %d cycles" Region.pp region tcycles)
          | Error reason ->
            Loop_detector.blacklist detector region.Region.entry;
            Stats.incr regions_rejected;
            emit
              (Trace.instant ~cat:"detector" ~ts:(wall_now ())
                 ~args:[ ("reason", Json.String reason) ]
                 ("reject " ^ rname region.Region.entry));
            Log.debug (fun m -> m "mapping failed for %a: %s" Region.pp region reason);
            rejected :=
              {
                entry = region.Region.entry;
                size = Region.size region;
                pragma = region.Region.pragma;
                accepted = false;
                reject_reason = Some reason;
                tiling = 1;
                pipelined = false;
                translation_cycles = 0;
                accel_iterations = 0;
                accel_cycles = 0;
                reconfigurations = 0;
                offload_count = 0;
                faults_detected = 0;
                fault_retries = 0;
                fault_remaps = 0;
                quarantines = 0;
                critical_path = [];
                critical_path_latency = 0.0;
                measured = None;
              }
              :: !rejected)
        | Some (Loop_detector.Rejected { entry; reason }) ->
          Stats.incr regions_rejected;
          emit
            (Trace.instant ~cat:"detector" ~ts:(wall_now ())
               ~args:[ ("reason", Json.String reason) ]
               ("reject " ^ rname entry));
          Log.debug (fun m -> m "rejected region 0x%x: %s" entry reason);
          rejected :=
            {
              entry;
              size = 0;
              pragma = None;
              accepted = false;
              reject_reason = Some reason;
              tiling = 1;
              pipelined = false;
              translation_cycles = 0;
              accel_iterations = 0;
              accel_cycles = 0;
              reconfigurations = 0;
              offload_count = 0;
              faults_detected = 0;
              fault_retries = 0;
              fault_remaps = 0;
              quarantines = 0;
              critical_path = [];
              critical_path_latency = 0.0;
              measured = None;
            }
            :: !rejected
        | None -> ())
    end
  done;
  let cpu_summary = Ooo_model.summary cpu_model in
  let accepted_reports =
    List.map
      (fun (c : Config_manager.cached) ->
        (* Critical path over measured weights when the profiler ran (its
           side models absorb every clean window); the optimizer's model —
           measured under iterative mode, static otherwise — when not. *)
        let cp_model =
          match
            Hashtbl.find_opt profile_models c.Config_manager.region.Region.entry
          with
          | Some pm -> pm
          | None -> c.Config_manager.model
        in
        {
          entry = c.Config_manager.region.Region.entry;
          size = Region.size c.Config_manager.region;
          pragma = c.Config_manager.region.Region.pragma;
          accepted = true;
          reject_reason = c.Config_manager.abort_reason;
          tiling = c.Config_manager.config.Accel_config.tiling;
          pipelined = c.Config_manager.config.Accel_config.pipelined;
          translation_cycles = c.Config_manager.translation_cycles;
          accel_iterations = c.Config_manager.accel_iterations;
          accel_cycles = c.Config_manager.accel_cycles;
          reconfigurations = c.Config_manager.reconfigurations;
          offload_count = c.Config_manager.offloads;
          faults_detected = c.Config_manager.faults_detected;
          fault_retries = c.Config_manager.fault_retries;
          fault_remaps = c.Config_manager.fault_remaps;
          quarantines = c.Config_manager.quarantines;
          critical_path = Perf_model.critical_path cp_model;
          critical_path_latency = Perf_model.iteration_latency cp_model;
          measured =
            Hashtbl.find_opt measured_snaps
              c.Config_manager.region.Region.entry;
        })
      (Config_manager.entries cache)
  in
  {
    total_cycles = cpu_summary.Ooo_model.cycles + Stats.get accel_cycles + Stats.get overhead;
    cpu_cycles = cpu_summary.Ooo_model.cycles;
    accel_cycles = Stats.get accel_cycles;
    overhead_cycles = Stats.get overhead;
    mesa_busy_cycles = Stats.get mesa_busy;
    offloads = Stats.get offloads;
    halt = Option.get !halt;
    cpu_summary;
    activity;
    regions = accepted_reports @ List.rev !rejected;
    hier;
    stats = Stats.snapshot reg;
    timeline = List.rev !timeline;
    attribution = att;
  }

let speedup ~baseline_cycles report =
  if report.total_cycles = 0 then 0.0
  else float_of_int baseline_cycles /. float_of_int report.total_cycles
