let all () =
  [
    Kernel_backprop.make ();
    Kernel_bfs.make ();
    Kernel_btree.make ();
    Kernel_cfd.make ();
    Kernel_gaussian.make ();
    Kernel_heartwall.make ();
    Kernel_hotspot.make ();
    Kernel_hybridsort.make ();
    Kernel_kmeans.make ();
    Kernel_lavamd.make ();
    Kernel_leukocyte.make ();
    Kernel_lud.make ();
    Kernel_mummergpu.make ();
    Kernel_myocyte.make ();
    Kernel_nn.make ();
    Kernel_nw.make ();
    Kernel_particlefilter.make ();
    Kernel_pathfinder.make ();
    Kernel_srad.make ();
    Kernel_stencil_conv.make ();
    Kernel_streamcluster.make ();
    Kernel_tiled_gemm.make ~t:2 ();
    Kernel_tiled_gemm.make ~t:4 ();
  ]

let find name =
  match List.find_opt (fun k -> k.Kernel.name = name) (all ()) with
  | Some k -> k
  | None -> raise Not_found

let names () = List.map (fun k -> k.Kernel.name) (all ())

let opencgra_compatible () =
  List.map find
    [ "backprop"; "btree"; "cfd"; "gaussian"; "hotspot"; "lud"; "nn"; "streamcluster" ]

let dynaspam_shared () =
  List.map find [ "backprop"; "bfs"; "cfd"; "hotspot"; "kmeans"; "lud"; "nn"; "nw" ]

let nn ?n () = Kernel_nn.make ?n ()
