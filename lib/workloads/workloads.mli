(** Registry of all benchmark kernels used by the evaluation. *)

val all : unit -> Kernel.t list
(** The full kernel suite at default sizes, in alphabetical order: the 20
    Rodinia kernels plus the three tile-DSL-built ones (stencil_conv and
    the two tiled_gemm variants). *)

val find : string -> Kernel.t
(** Lookup by name. Raises [Not_found] on an unknown name. *)

val names : unit -> string list

val opencgra_compatible : unit -> Kernel.t list
(** The eight kernels used for the OpenCGRA comparison (Figure 12) — the
    ones without predicated bodies, which the baseline scheduler handles. *)

val dynaspam_shared : unit -> Kernel.t list
(** Kernels shared with the DynaSpAM evaluation (Figure 14). *)

val nn : ?n:int -> unit -> Kernel.t
(** The PE-scaling kernel (Figure 15) at a custom size. *)
