(* A three-tap stencil convolution written in the tile DSL: each output row
   convolves the matching input row (with a one-column halo on each side)
   against [0.25 0.5 0.25], taps unrolled into one expression tree. The
   innermost column loop passes {!Tile_dsl.innermost_parallel} and so
   carries the OpenMP pragma MESA's tiling keys on — the DSL-built
   counterpart to the reduction-shaped tiled_gemm kernels, small enough to
   map onto M-64. *)

open Tile_dsl

let rows = 6
let cols = 64
let iw = cols + 2 (* input row stride: one halo column on each side *)

(* Powers-of-two taps are exactly representable, so the Fconst validation
   and the bit-exact reference hold trivially. *)
let taps = [| 0.25; 0.5; 0.25 |]

let spec () =
  let term dc =
    Fbin
      ( Fmul,
        Fconst taps.(dc),
        Fload ("x", idx ~const:dc [ ("r", iw); ("c", 1) ]) )
  in
  let sum = Fbin (Fadd, Fbin (Fadd, term 0, term 1), term 2) in
  {
    sname = "stencil_conv";
    seed = 0x57e4;
    arrays =
      [ array_f "x" (rows * iw); array_f ~input:false "out" (rows * cols) ];
    body =
      [
        for_ "r" rows
          [ for_ "c" cols [ Fstore ("out", idx [ ("r", cols); ("c", 1) ], sum) ] ];
      ];
  }

let make () =
  let b = Tile_lower.lower_exn (spec ()) in
  {
    Kernel.name = "stencil_conv";
    description = "DSL-built 3-tap f32 stencil, parallel inner loop";
    parallel = b.Tile_lower.parallel;
    fp = b.Tile_lower.fp;
    n = b.Tile_lower.n;
    program = b.Tile_lower.program;
    setup = b.Tile_lower.setup;
    args = b.Tile_lower.args;
    fargs = b.Tile_lower.fargs;
    check = b.Tile_lower.check;
  }
