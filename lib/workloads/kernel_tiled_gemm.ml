(* Dense single-precision GEMM written in the tile DSL (lib/gen): C = A*B
   over 16x16 matrices with the j loop strip-mined by {!Tile_dsl.tile}.
   This is the DSL proving itself on a real workload rather than a random
   one — the lowered program goes through exactly the same
   validate/lower/setup/check path the fuzzer exercises. Two tile factors
   are exported so the suite covers two distinct lowered shapes of the same
   computation. *)

open Tile_dsl

let n = 16

let spec ~t =
  let jloop =
    for_ "j" n
      [
        Fset (0, Fconst 0.0);
        for_ "k" n
          [
            accum_f 0 Fadd
              (Fbin
                 ( Fmul,
                   Fload ("a", idx [ ("i", n); ("k", 1) ]),
                   Fload ("b", idx [ ("k", n); ("j", 1) ]) ));
          ];
        Fstore ("c", idx [ ("i", n); ("j", 1) ], Ftmp 0);
      ]
  in
  let jloop =
    match tile ~t jloop with
    | Ok s -> s
    | Error e -> invalid_arg ("kernel_tiled_gemm: " ^ e)
  in
  {
    sname = Printf.sprintf "tiled_gemm%d" t;
    seed = 0x6e3a + t;
    arrays =
      [
        array_f "a" (n * n);
        array_f "b" (n * n);
        array_f ~input:false "c" (n * n);
      ];
    body = [ for_ "i" n [ jloop ] ];
  }

let make ~t () =
  let b = Tile_lower.lower_exn (spec ~t) in
  {
    Kernel.name = b.Tile_lower.spec.sname;
    description =
      Printf.sprintf "DSL-built f32 GEMM, %dx%d, j strip-mined by %d" n n t;
    parallel = b.Tile_lower.parallel;
    fp = b.Tile_lower.fp;
    n = b.Tile_lower.n;
    program = b.Tile_lower.program;
    setup = b.Tile_lower.setup;
    args = b.Tile_lower.args;
    fargs = b.Tile_lower.fargs;
    check = b.Tile_lower.check;
  }
